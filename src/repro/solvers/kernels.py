"""Shared sweep kernels for the software annealers.

Every software minimizer in this package (neal, SQA, tabu, steepest
descent, and the simulated D-Wave machine behind them) sweeps the same
inner loop: propose flipping one spin, look at the local field
``f_i = h_i + sum_j J_ij s_j``, accept or reject, and incrementally
update the fields of ``i``'s neighbors.  On embedded problems the
neighbors are few -- Chimera C16 qubits have degree <= 6, so >99% of a
dense 2048 x 2048 J matrix is zeros -- which makes the dense
``O(num_reads * n)``-per-flip update the dominant cost.

This module centralizes the sweep primitives with three interchangeable
tiers:

* ``dense`` -- updates against a dense row of the J matrix (fast for
  small or high-density models, where BLAS beats indexing overhead);
* ``sparse`` -- updates only the CSR neighbor list of the flipped spin
  (``IsingModel.to_csr()``), turning a flip into ``O(num_reads * deg)``;
* ``jit`` -- a numba-compiled fused sweep loop over the same CSR
  adjacency (``repro.solvers._kernels_jit``), removing the per-proposal
  Python/numpy dispatch that dominates the sparse tier.  Optional: when
  numba is not importable (or ``REPRO_NO_NUMBA`` is set) the tier
  silently degrades to ``sparse`` after a single RuntimeWarning.

All tiers are **bit-identical**: they share the same initial-field
computation, the same accept rule, and the same RNG consumption
pattern.  The dense update only ever adds exact zeros where the sparse
update touches nothing, and the JIT loop is written so that every
floating-point operation matches the numpy expression element for
element.  To make that possible the Metropolis accept runs in the *log
domain*: instead of ``u < exp(min(2 beta s_i f_i, 0))`` we test
``log(u) < min(2 beta s_i f_i, 0)``, with the log taken by numpy on the
whole uniform block *outside* the compiled loop.  The compiled code
then contains no transcendental calls at all, so there is no numpy-SIMD
vs libm ULP mismatch to worry about -- identity holds by construction,
not by luck.  (The two accept rules are mathematically equivalent;
``u = 0`` maps to ``log(u) = -inf`` which is still always accepted.)

``choose_kernel`` picks the tier automatically from the model's size,
density, and read-batch width; every sampler accepts
``kernel="dense"``/``"sparse"``/``"jit"`` to force one, and
``available_kernels()`` reports which tiers can actually run in this
interpreter.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Optional

import numpy as np

#: Kernel names.
DENSE = "dense"
SPARSE = "sparse"
JIT = "jit"
KERNELS = (DENSE, SPARSE, JIT)

#: Below this variable count the dense kernel always wins: the whole J
#: matrix fits in cache and BLAS/vector ops beat per-row indexing.
SPARSE_MIN_VARIABLES = 64
#: Above this nnz/n^2 density the dense kernel wins even for large n.
SPARSE_MAX_DENSITY = 0.25
#: At or below this many reads the sparse tier's fancy-indexing overhead
#: (np.ix_ gather/scatter per flip) is not amortized by vector width: a
#: 1..4-row flip via np.ix_ costs several times a contiguous dense-row
#: update.  Re-tuned with the num_reads-aware crossover (2026-08): tabu
#: (read width 1) and single-state polish calls land here.
DENSE_MAX_BATCH_READS = 4
#: ... but only while the dense J matrix stays cheap to materialize and
#: walk: above ~2048 variables (a 2048 x 2048 float64 J is 32 MB) the
#: O(n) dense row update loses to O(deg) regardless of read width.
DENSE_BATCH_CROSSOVER_VARIABLES = 2048

#: A flip updater: ``flip(spins, fields, i, rows)`` negates column ``i``
#: of ``spins`` at ``rows`` and updates ``fields`` incrementally.
FlipUpdater = Callable[[np.ndarray, np.ndarray, int, np.ndarray], None]

# Lazy numba probe, shared by choose_kernel / available_kernels / the
# dispatchers.  "checked" flips on first probe; "warned" makes the
# jit-requested-but-unavailable fallback a single RuntimeWarning per
# process rather than one per sample call.
_JIT_STATE = {"module": None, "checked": False, "warned": False}


def _load_jit():
    """Import the numba tier once; None when numba is unavailable.

    Honors ``REPRO_NO_NUMBA`` (any non-empty value) so CI can prove the
    fallback path stays green on hosts that *do* have numba installed.
    """
    state = _JIT_STATE
    if not state["checked"]:
        state["checked"] = True
        if not os.environ.get("REPRO_NO_NUMBA"):
            try:
                from repro.solvers import _kernels_jit

                state["module"] = _kernels_jit
            except ImportError:
                state["module"] = None
    return state["module"]


def _warn_jit_fallback() -> None:
    if not _JIT_STATE["warned"]:
        _JIT_STATE["warned"] = True
        warnings.warn(
            "the 'jit' kernel requires numba (pip install 'repro[jit]'); "
            "falling back to the 'sparse' kernel",
            RuntimeWarning,
            stacklevel=3,
        )


def jit_available() -> bool:
    """True when the numba tier can run in this interpreter."""
    return _load_jit() is not None


def available_kernels() -> tuple:
    """The kernel tiers that can actually run here, in speed order.

    Always contains ``dense`` and ``sparse``; contains ``jit`` only when
    numba imports cleanly and ``REPRO_NO_NUMBA`` is unset.
    """
    if jit_available():
        return (DENSE, SPARSE, JIT)
    return (DENSE, SPARSE)


def choose_kernel(
    num_variables: int,
    nnz: int,
    kernel: Optional[str] = None,
    num_reads: Optional[int] = None,
) -> str:
    """Pick a sweep tier: explicit request, or the tuned crossover.

    The automatic crossover (re-tuned for the three-tier lineup):

    1. tiny models (``n < SPARSE_MIN_VARIABLES``) or dense models
       (``nnz/n^2 > SPARSE_MAX_DENSITY``) -> ``dense``;
    2. otherwise ``jit`` when numba is available -- the fused loop beats
       both numpy tiers at every size/width measured;
    3. otherwise ``sparse``, *except* that narrow read batches
       (``num_reads <= DENSE_MAX_BATCH_READS`` on models up to
       ``DENSE_BATCH_CROSSOVER_VARIABLES`` variables) take ``dense``:
       with 1-4 rows in flight the np.ix_ gather/scatter per flip costs
       more than the contiguous dense row it avoids.

    Args:
        num_variables: model size n.
        nnz: stored CSR entries (2x the non-zero coupling count).
        kernel: ``"dense"``/``"sparse"``/``"jit"`` to force a tier, or
            None.  Requesting ``"jit"`` without numba warns once and
            returns ``"sparse"`` (the result names the tier that will
            actually run).
        num_reads: read-batch width of the upcoming sweep calls, when
            the caller knows it.  None preserves the width-agnostic
            behavior.
    """
    if kernel is not None:
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}"
            )
        if kernel == JIT and _load_jit() is None:
            _warn_jit_fallback()
            return SPARSE
        return kernel
    if num_variables < SPARSE_MIN_VARIABLES:
        return DENSE
    density = nnz / float(num_variables * num_variables)
    if density > SPARSE_MAX_DENSITY:
        return DENSE
    if _load_jit() is not None:
        return JIT
    if (
        num_reads is not None
        and num_reads <= DENSE_MAX_BATCH_READS
        and num_variables <= DENSE_BATCH_CROSSOVER_VARIABLES
    ):
        return DENSE
    return SPARSE


def densify(
    num_variables: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
) -> np.ndarray:
    """Expand a CSR adjacency back into a symmetric dense J matrix."""
    j_mat = np.zeros((num_variables, num_variables), dtype=float)
    if len(indices):
        rows = np.repeat(np.arange(num_variables), np.diff(indptr))
        j_mat[rows, indices] = data
    return j_mat


def init_local_fields(
    h: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    spins: np.ndarray,
) -> np.ndarray:
    """Batched local fields ``fields[r, i] = h_i + sum_j J_ij s_rj``.

    Shared by all kernel tiers (and by :func:`batched_energies`) so the
    sweep paths start from bit-identical state: the sum over each
    variable's neighbors runs in ascending column order either way.
    """
    spins = np.asarray(spins, dtype=float)
    num_reads, n = spins.shape
    fields = np.empty((num_reads, n), dtype=float)
    for i in range(n):
        start, end = indptr[i], indptr[i + 1]
        if start == end:
            fields[:, i] = h[i]
        else:
            fields[:, i] = h[i] + spins[:, indices[start:end]] @ data[start:end]
    return fields


def batched_energies(
    h: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    spins: np.ndarray,
    offset: float = 0.0,
) -> np.ndarray:
    """Vectorized energies of a spin matrix against a CSR model.

    ``E_r = offset + s_r . h + (1/2) s_r . (J s_r)``, evaluated in
    O(num_reads * nnz) instead of O(num_reads * n^2).
    """
    spins = np.asarray(spins, dtype=float)
    fields = init_local_fields(h, indptr, indices, data, spins)
    linear = spins @ h
    quad = 0.5 * np.einsum("ri,ri->r", spins, fields - h[None, :])
    return linear + quad + offset


def log_uniforms(
    rng: np.random.Generator, shape, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Draw a uniform block and return its elementwise log.

    This is THE accept-threshold draw shared by every tier: one uniform
    per (proposal, read), logged in numpy so the compiled tier never
    calls a transcendental.  ``u = 0`` maps to ``-inf`` (still a
    guaranteed accept), so the divide-by-zero warning is suppressed.
    """
    uniforms = rng.random(shape)
    with np.errstate(divide="ignore"):
        return np.log(uniforms, out=out)


def make_flip_updater(
    kernel: str,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    dense_j: Optional[np.ndarray] = None,
) -> FlipUpdater:
    """Build the per-column flip updater for a tier.

    The returned callable flips ``spins[rows, i]`` and applies the
    incremental field update ``f_j -= 2 J_ij s_i^old`` -- to every
    column (dense) or only to ``i``'s CSR neighbors (sparse/jit).  All
    three are bit-identical because the dense row is zero off the
    neighbor list (``x - 0.0 == x`` exactly) and the jit loop performs
    the same per-element multiply in the same order.
    """
    if kernel == DENSE:
        if dense_j is None:
            dense_j = densify(len(indptr) - 1, indptr, indices, data)

        def flip(spins, fields, i, rows):
            old = spins[rows, i]
            spins[rows, i] = -old
            fields[rows, :] -= (2.0 * old)[:, None] * dense_j[i][None, :]

        return flip
    if kernel == JIT:
        jit_mod = _load_jit()
        if jit_mod is None:
            _warn_jit_fallback()
            return make_flip_updater(SPARSE, indptr, indices, data)

        def flip(spins, fields, i, rows):
            jit_mod.flip_rows(
                spins, fields, int(i), np.ascontiguousarray(rows),
                indptr, indices, data,
            )

        return flip
    if kernel != SPARSE:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")

    def flip(spins, fields, i, rows):
        old = spins[rows, i]
        spins[rows, i] = -old
        start, end = indptr[i], indptr[i + 1]
        if start != end:
            fields[np.ix_(rows, indices[start:end])] -= (
                (2.0 * old)[:, None] * data[start:end][None, :]
            )

    return flip


def make_mixed_flip_updater(
    kernel: str,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    dense_j: Optional[np.ndarray] = None,
) -> Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], None]:
    """Flip updater where every row flips its *own* column.

    ``flip(spins, fields, rows, cols)`` flips ``spins[rows[k],
    cols[k]]`` for each k -- the steepest-descent pattern, where each
    read picks a different best flip per sweep.
    """
    if kernel == DENSE:
        if dense_j is None:
            dense_j = densify(len(indptr) - 1, indptr, indices, data)

        def flip(spins, fields, rows, cols):
            old = spins[rows, cols]
            spins[rows, cols] = -old
            fields[rows, :] -= (2.0 * old)[:, None] * dense_j[cols, :]

        return flip
    if kernel == JIT:
        jit_mod = _load_jit()
        if jit_mod is None:
            _warn_jit_fallback()
            return make_mixed_flip_updater(SPARSE, indptr, indices, data)

        def flip(spins, fields, rows, cols):
            jit_mod.flip_mixed(
                spins, fields,
                np.ascontiguousarray(rows), np.ascontiguousarray(cols),
                indptr, indices, data,
            )

        return flip
    if kernel != SPARSE:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")

    def flip(spins, fields, rows, cols):
        old = spins[rows, cols]
        spins[rows, cols] = -old
        for k in range(len(rows)):
            i = cols[k]
            start, end = indptr[i], indptr[i + 1]
            if start != end:
                fields[rows[k], indices[start:end]] -= (
                    2.0 * old[k] * data[start:end]
                )

    return flip


#: How many sweeps run between deadline polls: the sweep-batch
#: granularity of cooperative cancellation.  A deadline-bounded anneal
#: can overshoot its budget by at most this many sweeps.  The JIT tier
#: keeps the same contract by chunking its compiled calls so that
#: control returns to Python exactly at these sweep boundaries.
DEADLINE_SWEEP_BATCH = 16

#: Memory bound on the JIT tier's precomputed log-uniform block:
#: chunk_sweeps = clamp(JIT_CHUNK_ELEMENTS / (n * num_reads), 1,
#: DEADLINE_SWEEP_BATCH).  2^22 float64s = 32 MB -- large enough that
#: full 16-sweep chunks run up to n*reads ~ 256k, small enough never to
#: blow the cache budget of a pool worker.
JIT_CHUNK_ELEMENTS = 1 << 22


def metropolis_sweeps(
    rng: np.random.Generator,
    spins: np.ndarray,
    fields: np.ndarray,
    betas: np.ndarray,
    flip: FlipUpdater,
    deadline=None,
    stats: Optional[dict] = None,
) -> int:
    """Run Metropolis single-spin-flip sweeps over a batch of reads.

    One sweep per entry of ``betas``; each sweep proposes one flip per
    variable (in a fresh random permutation) simultaneously across every
    read.  ``spins`` and ``fields`` are updated in place.  Returns the
    number of accepted flips.

    The accept logic -- and therefore the RNG consumption pattern -- is
    the single definition shared by every kernel tier, which is what
    makes the tiers sample-for-sample identical.  Every proposal
    consumes one uniform per read (drawn per sweep in a single block),
    so acceptance math never feeds back into the RNG stream.  The
    accept test runs in the log domain (``log(u) < min(2 beta s f,
    0)``) -- see the module docstring for why that choice makes the
    numpy and compiled tiers bit-identical by construction.

    Args:
        deadline: optional :class:`~repro.core.deadline.Deadline`; the
            loop polls it every :data:`DEADLINE_SWEEP_BATCH` sweeps and
            stops cleanly (no exception) when it expires, leaving
            ``spins`` at the last completed sweep.  Deadline polling
            never consumes RNG state, so a run that finishes under its
            budget is bit-identical to an unbounded one.
        stats: optional dict; receives ``sweeps_completed``.
    """
    n = spins.shape[1]
    num_reads = spins.shape[0]
    accepted = 0
    completed = 0
    for sweep, beta in enumerate(betas):
        if (
            deadline is not None
            and sweep % DEADLINE_SWEEP_BATCH == 0
            and deadline.expired()
        ):
            break
        variables = rng.permutation(n)
        log_u = log_uniforms(rng, (n, num_reads))
        two_beta = 2.0 * beta
        for k in range(n):
            i = variables[k]
            # One-shot Metropolis accept: x = -beta * delta_i
            # = 2 beta s_i f_i, clipped at 0 so downhill proposals get
            # threshold 0 (always accepted, as log(u) < 0 strictly).
            x = two_beta * spins[:, i] * fields[:, i]
            rows = np.nonzero(log_u[k] < np.minimum(x, 0.0))[0]
            if len(rows):
                flip(spins, fields, i, rows)
                accepted += len(rows)
        completed += 1
    if stats is not None:
        stats["sweeps_completed"] = completed
    return accepted


def _jit_metropolis_sweeps(
    rng: np.random.Generator,
    spins: np.ndarray,
    fields: np.ndarray,
    betas: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    jit_mod,
    deadline=None,
    stats: Optional[dict] = None,
) -> int:
    """Fused-loop twin of :func:`metropolis_sweeps` on the numba tier.

    Permutations and log-uniforms are pre-drawn in numpy -- in exactly
    the per-sweep order the numpy tier consumes them -- then handed to
    the compiled chunk kernel.  Chunks never cross a
    :data:`DEADLINE_SWEEP_BATCH` boundary, so ``deadline.expired()`` is
    polled at precisely the same sweep indices (and the same number of
    times) as the numpy loop, and are additionally capped at
    :data:`JIT_CHUNK_ELEMENTS` staged accept thresholds to bound memory.
    """
    n = spins.shape[1]
    num_reads = spins.shape[0]
    total = len(betas)
    betas_arr = np.ascontiguousarray(betas, dtype=float)
    max_chunk = max(1, min(DEADLINE_SWEEP_BATCH, JIT_CHUNK_ELEMENTS // max(1, n * num_reads)))
    accepted = 0
    sweep = 0
    while sweep < total:
        if (
            deadline is not None
            and sweep % DEADLINE_SWEEP_BATCH == 0
            and deadline.expired()
        ):
            break
        window_end = min(
            total,
            sweep + DEADLINE_SWEEP_BATCH - (sweep % DEADLINE_SWEEP_BATCH),
        )
        chunk = min(max_chunk, window_end - sweep)
        perms = np.empty((chunk, n), dtype=np.int64)
        log_u = np.empty((chunk, n, num_reads), dtype=float)
        for c in range(chunk):
            perms[c] = rng.permutation(n)
            log_uniforms(rng, (n, num_reads), out=log_u[c])
        accepted += int(
            jit_mod.metropolis_chunk(
                spins, fields, indptr, indices, data,
                perms, log_u, betas_arr[sweep:sweep + chunk],
            )
        )
        sweep += chunk
    if stats is not None:
        stats["sweeps_completed"] = sweep
    return accepted


def run_metropolis_sweeps(
    rng: np.random.Generator,
    spins: np.ndarray,
    fields: np.ndarray,
    betas: np.ndarray,
    kernel: str,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    dense_j: Optional[np.ndarray] = None,
    deadline=None,
    stats: Optional[dict] = None,
) -> int:
    """Tier dispatcher for a full Metropolis anneal.

    ``jit`` runs the fused compiled loop; ``dense``/``sparse`` build the
    matching flip updater and run the shared numpy loop.  Results are
    bit-identical across tiers for the same rng state.
    """
    if kernel == JIT:
        jit_mod = _load_jit()
        if jit_mod is None:
            _warn_jit_fallback()
            kernel = SPARSE
        else:
            return _jit_metropolis_sweeps(
                rng, spins, fields, betas, indptr, indices, data,
                jit_mod, deadline=deadline, stats=stats,
            )
    flip = make_flip_updater(kernel, indptr, indices, data, dense_j)
    return metropolis_sweeps(
        rng, spins, fields, betas, flip, deadline=deadline, stats=stats
    )
