"""Shared sweep kernels for the software annealers.

Every software minimizer in this package (neal, SQA, tabu, steepest
descent, and the simulated D-Wave machine behind them) sweeps the same
inner loop: propose flipping one spin, look at the local field
``f_i = h_i + sum_j J_ij s_j``, accept or reject, and incrementally
update the fields of ``i``'s neighbors.  On embedded problems the
neighbors are few -- Chimera C16 qubits have degree <= 6, so >99% of a
dense 2048 x 2048 J matrix is zeros -- which makes the dense
``O(num_reads * n)``-per-flip update the dominant cost.

This module centralizes the sweep primitives with two interchangeable
backends:

* ``dense`` -- updates against a dense row of the J matrix (fast for
  small or high-density models, where BLAS beats indexing overhead);
* ``sparse`` -- updates only the CSR neighbor list of the flipped spin
  (``IsingModel.to_csr()``), turning a flip into ``O(num_reads * deg)``.

Both backends are **bit-identical**: they share the same initial-field
computation, the same Metropolis accept logic, and the same RNG
consumption pattern, and the dense update only ever adds exact zeros
where the sparse update touches nothing.  ``choose_kernel`` picks the
backend automatically from the model's size and density; every sampler
accepts ``kernel="dense"``/``"sparse"`` to force one.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

#: Kernel names.
DENSE = "dense"
SPARSE = "sparse"
KERNELS = (DENSE, SPARSE)

#: Below this variable count the dense kernel always wins: the whole J
#: matrix fits in cache and BLAS/vector ops beat per-row indexing.
SPARSE_MIN_VARIABLES = 64
#: Above this nnz/n^2 density the dense kernel wins even for large n.
SPARSE_MAX_DENSITY = 0.25

#: A flip updater: ``flip(spins, fields, i, rows)`` negates column ``i``
#: of ``spins`` at ``rows`` and updates ``fields`` incrementally.
FlipUpdater = Callable[[np.ndarray, np.ndarray, int, np.ndarray], None]


def choose_kernel(
    num_variables: int, nnz: int, kernel: Optional[str] = None
) -> str:
    """Pick a sweep backend: explicit request, or the density crossover.

    Args:
        num_variables: model size n.
        nnz: stored CSR entries (2x the non-zero coupling count).
        kernel: ``"dense"``/``"sparse"`` to force a backend, or None.
    """
    if kernel is not None:
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}"
            )
        return kernel
    if num_variables < SPARSE_MIN_VARIABLES:
        return DENSE
    density = nnz / float(num_variables * num_variables)
    return SPARSE if density <= SPARSE_MAX_DENSITY else DENSE


def densify(
    num_variables: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
) -> np.ndarray:
    """Expand a CSR adjacency back into a symmetric dense J matrix."""
    j_mat = np.zeros((num_variables, num_variables), dtype=float)
    if len(indices):
        rows = np.repeat(np.arange(num_variables), np.diff(indptr))
        j_mat[rows, indices] = data
    return j_mat


def init_local_fields(
    h: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    spins: np.ndarray,
) -> np.ndarray:
    """Batched local fields ``fields[r, i] = h_i + sum_j J_ij s_rj``.

    Shared by both kernels (and by :func:`batched_energies`) so that the
    dense and sparse sweep paths start from bit-identical state: the sum
    over each variable's neighbors runs in ascending column order either
    way.
    """
    spins = np.asarray(spins, dtype=float)
    num_reads, n = spins.shape
    fields = np.empty((num_reads, n), dtype=float)
    for i in range(n):
        start, end = indptr[i], indptr[i + 1]
        if start == end:
            fields[:, i] = h[i]
        else:
            fields[:, i] = h[i] + spins[:, indices[start:end]] @ data[start:end]
    return fields


def batched_energies(
    h: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    spins: np.ndarray,
    offset: float = 0.0,
) -> np.ndarray:
    """Vectorized energies of a spin matrix against a CSR model.

    ``E_r = offset + s_r . h + (1/2) s_r . (J s_r)``, evaluated in
    O(num_reads * nnz) instead of O(num_reads * n^2).
    """
    spins = np.asarray(spins, dtype=float)
    fields = init_local_fields(h, indptr, indices, data, spins)
    linear = spins @ h
    quad = 0.5 * np.einsum("ri,ri->r", spins, fields - h[None, :])
    return linear + quad + offset


def make_flip_updater(
    kernel: str,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    dense_j: Optional[np.ndarray] = None,
) -> FlipUpdater:
    """Build the per-column flip updater for a backend.

    The returned callable flips ``spins[rows, i]`` and applies the
    incremental field update ``f_j -= 2 J_ij s_i^old`` -- to every
    column (dense) or only to ``i``'s CSR neighbors (sparse).  The two
    are bit-identical because the dense row is zero off the neighbor
    list and ``x - 0.0 == x`` exactly.
    """
    if kernel == DENSE:
        if dense_j is None:
            dense_j = densify(len(indptr) - 1, indptr, indices, data)

        def flip(spins, fields, i, rows):
            old = spins[rows, i]
            spins[rows, i] = -old
            fields[rows, :] -= (2.0 * old)[:, None] * dense_j[i][None, :]

        return flip
    if kernel != SPARSE:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")

    def flip(spins, fields, i, rows):
        old = spins[rows, i]
        spins[rows, i] = -old
        start, end = indptr[i], indptr[i + 1]
        if start != end:
            fields[np.ix_(rows, indices[start:end])] -= (
                (2.0 * old)[:, None] * data[start:end][None, :]
            )

    return flip


def make_mixed_flip_updater(
    kernel: str,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    dense_j: Optional[np.ndarray] = None,
) -> Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], None]:
    """Flip updater where every row flips its *own* column.

    ``flip(spins, fields, rows, cols)`` flips ``spins[rows[k],
    cols[k]]`` for each k -- the steepest-descent pattern, where each
    read picks a different best flip per sweep.
    """
    if kernel == DENSE:
        if dense_j is None:
            dense_j = densify(len(indptr) - 1, indptr, indices, data)

        def flip(spins, fields, rows, cols):
            old = spins[rows, cols]
            spins[rows, cols] = -old
            fields[rows, :] -= (2.0 * old)[:, None] * dense_j[cols, :]

        return flip
    if kernel != SPARSE:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")

    def flip(spins, fields, rows, cols):
        old = spins[rows, cols]
        spins[rows, cols] = -old
        for k in range(len(rows)):
            i = cols[k]
            start, end = indptr[i], indptr[i + 1]
            if start != end:
                fields[rows[k], indices[start:end]] -= (
                    2.0 * old[k] * data[start:end]
                )

    return flip


#: How many sweeps run between deadline polls: the sweep-batch
#: granularity of cooperative cancellation.  A deadline-bounded anneal
#: can overshoot its budget by at most this many sweeps.
DEADLINE_SWEEP_BATCH = 16


def metropolis_sweeps(
    rng: np.random.Generator,
    spins: np.ndarray,
    fields: np.ndarray,
    betas: np.ndarray,
    flip: FlipUpdater,
    deadline=None,
    stats: Optional[dict] = None,
) -> int:
    """Run Metropolis single-spin-flip sweeps over a batch of reads.

    One sweep per entry of ``betas``; each sweep proposes one flip per
    variable (in a fresh random permutation) simultaneously across every
    read.  ``spins`` and ``fields`` are updated in place.  Returns the
    number of accepted flips.

    The accept logic -- and therefore the RNG consumption pattern -- is
    the single definition shared by the dense and sparse kernels, which
    is what makes the two backends sample-for-sample identical.  Every
    proposal consumes one uniform per read (drawn per sweep in a single
    block), so acceptance math never feeds back into the RNG stream.

    Args:
        deadline: optional :class:`~repro.core.deadline.Deadline`; the
            loop polls it every :data:`DEADLINE_SWEEP_BATCH` sweeps and
            stops cleanly (no exception) when it expires, leaving
            ``spins`` at the last completed sweep.  Deadline polling
            never consumes RNG state, so a run that finishes under its
            budget is bit-identical to an unbounded one.
        stats: optional dict; receives ``sweeps_completed``.
    """
    n = spins.shape[1]
    num_reads = spins.shape[0]
    accepted = 0
    completed = 0
    for sweep, beta in enumerate(betas):
        if (
            deadline is not None
            and sweep % DEADLINE_SWEEP_BATCH == 0
            and deadline.expired()
        ):
            break
        variables = rng.permutation(n)
        uniforms = rng.random((n, num_reads))
        two_beta = 2.0 * beta
        for k in range(n):
            i = variables[k]
            # One-shot Metropolis accept: x = -beta * delta_i
            # = 2 beta s_i f_i, clipped at 0 so downhill proposals get
            # p = 1 (always accepted, as u < 1 strictly) and the
            # exponential cannot overflow.
            x = two_beta * spins[:, i] * fields[:, i]
            p = np.exp(np.minimum(x, 0.0))
            rows = np.nonzero(uniforms[k] < p)[0]
            if len(rows):
                flip(spins, fields, i, rows)
                accepted += len(rows)
        completed += 1
    if stats is not None:
        stats["sweeps_completed"] = completed
    return accepted
