"""qbsolv-style decomposition: split problems too large for the hardware.

The paper notes qmasm can run programs "indirectly through qbsolv, which
can split large problems into sub-problems that fit on the D-Wave
hardware".  This module reproduces that flow: keep a full-size incumbent
assignment, repeatedly carve out a subset of variables (those with the
largest energy impact, plus their neighborhoods), clamp everything else,
solve the induced subproblem with a subsolver (the "hardware" sampler or
tabu), and accept improvements until no subproblem helps.

Reads are embarrassingly parallel: with the default tabu subsolver,
every read runs on a private RNG and subsolver built from a seed the
parent RNG drew upfront, so ``max_workers > 1`` (a process pool over
reads) returns bit-identical samples to a serial run.  A custom
``subsolver`` object is shared state, so those runs stay serial.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.core.trace import observe_sample as _observe_sample
from repro.ising.model import IsingModel
from repro.solvers.sampleset import SampleSet
from repro.solvers.tabu import TabuSampler

Variable = Hashable


def clamped_subproblem(
    model: IsingModel,
    assignment: Dict[Variable, int],
    region: List[Variable],
) -> IsingModel:
    """Fix every variable outside ``region`` at its incumbent spin.

    Boundary couplings fold into the linear biases of the region's
    variables and fully-external terms fold into the offset, so the
    subproblem's energy of any region assignment equals the full
    model's energy of (region assignment + clamped incumbent).  The
    interaction *structure* of the subproblem depends only on the
    region, never on the incumbent -- which is what lets decomposers
    (:class:`QBSolv`, :class:`~repro.solvers.shard.ShardSolver`) reuse
    one minor embedding per region across every round.
    """
    region_set = set(region)
    sub = IsingModel(offset=model.offset)
    for v in region:
        sub.add_variable(v, model.linear.get(v, 0.0))
    for (u, v), coupling in model.quadratic.items():
        u_in, v_in = u in region_set, v in region_set
        if u_in and v_in:
            sub.add_interaction(u, v, coupling)
        elif u_in:
            sub.add_variable(u, coupling * assignment[v])
        elif v_in:
            sub.add_variable(v, coupling * assignment[u])
        else:
            sub.offset += coupling * assignment[u] * assignment[v]
    for v, bias in model.linear.items():
        if v not in region_set:
            sub.offset += bias * assignment[v]
    return sub


def _solve_read(job) -> Dict:
    """One full decomposed solve on a private solver (process-pool safe).

    Module-level so it pickles; the seed in ``job`` fully determines the
    read's RNG and subsolver, making results independent of scheduling.
    """
    model, subproblem_size, num_repeats, seed = job
    solver = QBSolv(subproblem_size=subproblem_size, seed=seed)
    order = list(model.variables)
    return solver._solve_one(
        model, order, num_repeats, solver._rng, solver.subsolver
    )


class QBSolv:
    """Decomposing solver with a pluggable subproblem sampler."""

    def __init__(
        self,
        subproblem_size: int = 48,
        subsolver=None,
        seed: Optional[int] = None,
        max_workers: Optional[int] = None,
    ):
        """Args:
            subproblem_size: maximum variables per subproblem (on real
                hardware this is bounded by the working graph size).
            subsolver: object with ``sample(model, ...) -> SampleSet``;
                defaults to :class:`TabuSampler`.  Passing one pins the
                solve to a single shared sampler, which also disables
                process-pool reads.
            seed: RNG seed for restarts and region selection.
            max_workers: default process-pool size for multi-read solves
                (overridable per :meth:`sample` call).
        """
        self.subproblem_size = subproblem_size
        self._default_subsolver = subsolver is None
        self.subsolver = subsolver or TabuSampler(seed=seed)
        self.max_workers = max_workers
        self._rng = np.random.default_rng(seed)

    def sample(
        self,
        model: IsingModel,
        num_repeats: int = 10,
        num_reads: int = 1,
        max_workers: Optional[int] = None,
    ) -> SampleSet:
        """Minimize ``model``, decomposing if it exceeds the subproblem size.

        Args:
            model: the Ising model to minimize.
            num_repeats: outer iterations without improvement before a
                read terminates.
            num_reads: independent solves, each contributing one row.
            max_workers: run reads in a process pool of this size
                (defaults to the constructor's value).  Per-read seeds
                are drawn from the parent RNG before dispatch, so the
                samples are bit-identical to a serial run; ignored (and
                reads stay serial) with a custom subsolver.
        """
        order = list(model.variables)
        if len(order) <= self.subproblem_size:
            return self.subsolver.sample(model, num_reads=max(num_reads, 1))
        if max_workers is None:
            max_workers = self.max_workers
        start = time.perf_counter()

        if self._default_subsolver:
            # Each read gets a private solver rebuilt from a seed drawn
            # here, serially -- scheduling cannot change the answer.
            seeds = self._rng.integers(0, 2**63, size=num_reads)
            jobs = [
                (model, self.subproblem_size, num_repeats, int(seed))
                for seed in seeds
            ]
            if max_workers is not None and max_workers > 1 and num_reads > 1:
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    rows = list(pool.map(_solve_read, jobs))
            else:
                rows = [_solve_read(job) for job in jobs]
        else:
            rows = [
                self._solve_one(
                    model, order, num_repeats, self._rng, self.subsolver
                )
                for _ in range(num_reads)
            ]
        records = np.array(
            [[assignment[v] for v in order] for assignment in rows], dtype=np.int8
        )
        elapsed = time.perf_counter() - start
        result = SampleSet.from_array(
            order,
            records,
            model,
            info={
                "solver": "qbsolv",
                "subproblem_size": self.subproblem_size,
                "num_reads": num_reads,
                "max_workers": max_workers if self._default_subsolver else None,
            },
        )
        _observe_sample("qbsolv", result, elapsed, num_reads=num_reads,
                        subproblem_size=self.subproblem_size,
                        variables=len(order))
        return result

    # ------------------------------------------------------------------
    def _solve_one(
        self,
        model: IsingModel,
        order: List[Variable],
        num_repeats: int,
        rng: np.random.Generator,
        subsolver,
    ) -> Dict[Variable, int]:
        assignment: Dict[Variable, int] = {
            v: int(rng.choice([-1, 1])) for v in order
        }
        energy = model.energy(assignment)
        stall = 0
        use_impact = True
        while stall < num_repeats:
            # Alternate region strategies: impact-ranked regions target
            # the worst local contributions; BFS-connected regions sweep
            # out domain walls that span any single impact region.
            if use_impact:
                region = self._select_region(model, assignment, rng)
            else:
                region = self._select_connected_region(model, rng)
            use_impact = not use_impact
            sub = self._clamped_subproblem(model, assignment, region)
            best = subsolver.sample(sub, num_reads=1).first
            candidate = dict(assignment)
            candidate.update(best.assignment)
            candidate_energy = model.energy(candidate)
            if candidate_energy < energy - 1e-12:
                assignment, energy = candidate, candidate_energy
                stall = 0
            elif candidate_energy <= energy + 1e-12:
                # Plateau move: accept (lets domain walls drift until
                # they annihilate) but count toward the stall budget.
                assignment, energy = candidate, candidate_energy
                stall += 1
            else:
                stall += 1
        return assignment

    def _select_region(
        self,
        model: IsingModel,
        assignment: Dict[Variable, int],
        rng: np.random.Generator,
    ) -> List[Variable]:
        """Pick the variables with the largest local energy impact.

        Impact of flipping v is |2 s_v (h_v + sum J s)|; qbsolv similarly
        ranks variables by how much changing them could lower the
        energy.  Ties and exploration are randomized.
        """
        impact: Dict[Variable, float] = {}
        linear = model.linear
        for v in linear:
            field = linear[v]
            impact[v] = field * assignment[v]
        for (u, v), coupling in model.quadratic.items():
            term = coupling * assignment[u] * assignment[v]
            impact[u] = impact.get(u, 0.0) + term
            impact[v] = impact.get(v, 0.0) + term
        # Positive contribution == currently paying energy: flip candidates.
        scored = sorted(
            impact, key=lambda v: impact[v] + rng.normal(0, 1e-6), reverse=True
        )
        return scored[: self.subproblem_size]

    def _select_connected_region(
        self, model: IsingModel, rng: np.random.Generator
    ) -> List[Variable]:
        """A BFS ball around a random variable in the interaction graph."""
        adjacency: Dict[Variable, List[Variable]] = {v: [] for v in model.variables}
        for (u, v), coupling in model.quadratic.items():
            if coupling != 0.0:
                adjacency[u].append(v)
                adjacency[v].append(u)
        order = list(model.variables)
        start = order[int(rng.integers(0, len(order)))]
        region: List[Variable] = []
        seen = {start}
        queue = [start]
        while queue and len(region) < self.subproblem_size:
            v = queue.pop(0)
            region.append(v)
            for u in adjacency[v]:
                if u not in seen:
                    seen.add(u)
                    queue.append(u)
        # Pad with random variables if the component was small.
        if len(region) < self.subproblem_size:
            extras = [v for v in order if v not in seen]
            rng.shuffle(extras)
            region.extend(extras[: self.subproblem_size - len(region)])
        return region

    def _clamped_subproblem(
        self,
        model: IsingModel,
        assignment: Dict[Variable, int],
        region: List[Variable],
    ) -> IsingModel:
        """Fix every variable outside ``region`` at its incumbent spin."""
        return clamped_subproblem(model, assignment, region)
