"""Exhaustive ground-truth solver for small Ising models.

Enumerates all 2^N spin assignments with a vectorized energy evaluation.
Used as the oracle in tests and as the terminal subsolver for very small
qbsolv subproblems.
"""

from __future__ import annotations

import numpy as np

from repro.ising.model import IsingModel
from repro.solvers.sampleset import SampleSet


class ExactSolver:
    """Enumerate every spin assignment of a model (N <= ``max_variables``)."""

    def __init__(self, max_variables: int = 22):
        self.max_variables = max_variables

    def sample(self, model: IsingModel, num_lowest: int = 0) -> SampleSet:
        """Evaluate all assignments; optionally keep only ``num_lowest`` rows.

        Args:
            model: the Ising model to minimize.
            num_lowest: if positive, truncate the returned set to that
                many lowest-energy rows (0 keeps everything).
        """
        order = list(model.variables)
        n = len(order)
        if n == 0:
            return SampleSet.empty([])
        if n > self.max_variables:
            raise ValueError(
                f"{n} variables exceeds ExactSolver limit of {self.max_variables}"
            )
        # All assignments as a (2^n, n) matrix of +/-1 spins.
        grid = np.indices((2,) * n).reshape(n, -1).T
        spins = (2 * grid - 1).astype(np.int8)
        sampleset = SampleSet.from_array(order, spins, model, info={"solver": "exact"})
        if num_lowest:
            return SampleSet(
                order,
                sampleset.records[:num_lowest],
                sampleset.energies[:num_lowest],
                sampleset.occurrences[:num_lowest],
                sampleset.info,
            )
        return sampleset

    def ground_states(self, model: IsingModel, tol: float = 1e-9) -> SampleSet:
        """Only the minimum-energy assignments."""
        return self.sample(model).lowest(tol)
