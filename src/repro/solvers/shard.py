"""Sharded decomposition across a fleet of simulated annealer machines.

The C16 ceiling: one 2000Q embeds at most a few hundred logical
variables (the paper's Section 6.1 circuits use ~3.7 physical qubits
per logical variable), so any netlist past that simply does not fit.
Bian et al. (2018) show the way out -- partition the logical problem
into hardware-sized subproblems and iterate -- and a serving fleet has
many chips to throw at the pieces.  This module combines both ideas:

1. **Partition** the logical Ising model into connected, chip-sized
   regions (a deterministic BFS sweep over the interaction graph).
2. **Embed** each region once, against the fleet's working graph.
   Clamping never changes a region's interaction structure
   (:func:`~repro.solvers.qbsolv.clamped_subproblem`), so one embedding
   per region serves every round.
3. **Dispatch** each round's clamped subproblems across ``machines``
   simulated chips in a process pool.  Every stochastic input -- the
   per-shard machine-noise/anneal seeds, drawn from the parent RNG
   serially before dispatch -- is baked into the job tuple, so pooled
   results are bit-identical to a serial run, exactly like the gauge
   batches in :mod:`repro.solvers.machine`.
4. **Stitch** accepted shard results onto the incumbent in fixed region
   order (full-model energy re-check per shard) and iterate until no
   round improves, then **polish** the incumbent with the steepest-
   descent kernel.

Regions that fail to minor-embed (a degraded working graph can make a
chip-sized region unembeddable) fall back to the tabu kernel on the
clamped subproblem inside the worker -- the fleet degrades, it does
not fail.

Observability: the solve runs inside a ``shard.solve`` span with one
``shard.round`` event per round; each shard's wall time lands on
``machine.<i>.sample`` (``i`` = fleet machine index) plus
``shard.*`` counters on the ambient metrics registry.  A
:class:`~repro.core.deadline.Deadline` propagates into every worker as
a picklable :class:`~repro.core.deadline.Budget` re-armed on the
worker's own clock.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core import trace as _trace
from repro.core.cache import options_fingerprint
from repro.core.deadline import Deadline
from repro.core.trace import observe_sample as _observe_sample
from repro.hardware.embedding import (
    Embedding,
    EmbeddingError,
    embed_ising,
    find_embedding,
    source_graph_of,
    unembed_sampleset,
)
from repro.hardware.scaling import scale_to_hardware
from repro.ising.model import IsingModel
from repro.solvers.greedy import SteepestDescentSolver
from repro.solvers.machine import DWaveSimulator, MachineProperties
from repro.solvers.qbsolv import clamped_subproblem
from repro.solvers.sampleset import SampleSet
from repro.solvers.tabu import TabuSampler

Variable = Hashable

#: Worker-process machine cache: identical properties -> identical
#: working graph, built once per worker instead of once per job.  The
#: cached machine's RNG is re-seeded per job, so reuse cannot leak
#: state between jobs and results stay independent of scheduling.
_MACHINES: Dict[str, DWaveSimulator] = {}


def _fleet_machine(properties: MachineProperties) -> DWaveSimulator:
    key = options_fingerprint(properties)
    machine = _MACHINES.get(key)
    if machine is None:
        machine = DWaveSimulator(properties=properties, seed=0)
        _MACHINES[key] = machine
    return machine


def _solve_shard(job) -> Tuple[Dict, float, float, int, bool]:
    """Solve one clamped shard on one simulated machine (pool-safe).

    Module-level so it pickles.  The job tuple carries every stochastic
    input (the shard seed re-arms the machine RNG) plus a picklable
    remaining-seconds budget, so the result is a pure function of the
    job -- independent of which worker runs it, or in what order.

    Returns ``(assignment, energy, elapsed_s, reads, interrupted)``.
    """
    properties, embedding, sub_model, reads, anneal_us, seed, budget = job
    deadline = budget.start() if budget is not None else None
    start = time.perf_counter()
    if embedding is None:
        # Unembeddable region (degraded graph): tabu on the clamped
        # subproblem keeps the shard solvable.
        logical = TabuSampler(seed=seed).sample(
            sub_model, num_reads=1, deadline=deadline
        )
    else:
        machine = _fleet_machine(properties)
        machine._rng = np.random.default_rng(seed)
        physical = embed_ising(
            sub_model, embedding, machine.working_graph
        )
        scaled, _ = scale_to_hardware(physical)
        raw = machine.sample_ising(
            scaled,
            num_reads=reads,
            annealing_time_us=anneal_us,
            deadline=deadline,
        )
        logical = unembed_sampleset(raw, embedding, sub_model)
        logical = SteepestDescentSolver(seed=seed).polish(logical, sub_model)
    elapsed = time.perf_counter() - start
    best = logical.first
    interrupted = bool(logical.info.get("deadline_interrupted", False))
    return dict(best.assignment), float(best.energy), elapsed, reads, interrupted


class ShardSolver:
    """Decompose a too-large model across N simulated machines.

    Args:
        properties: the fleet's (homogeneous) chip properties; every
            simulated machine in the fleet is built from this template.
        machines: fleet size -- the number of simulated chips shard
            jobs are dispatched across, and the default process-pool
            width.  Purely an execution/attribution concern: results
            are bit-identical for any fleet size or worker count.
        shard_size: maximum logical variables per region; defaults to a
            conservative quarter of the chip's working qubits (chains
            cost ~4x physical per logical on Chimera-class graphs,
            Section 6.1).
        num_reads_per_shard: anneal reads per shard job.
        annealing_time_us: per-anneal time inside each shard job.
        max_rounds: hard cap on stitch rounds per solve.
        patience: stop after this many rounds without improvement.
        seed: drives the incumbent start and every shard seed.
        embedding_seed: seed for the per-region minor embedder.
        max_workers: default pool width (None -> ``machines``); 1
            forces serial execution, which is bit-identical.
    """

    def __init__(
        self,
        properties: Optional[MachineProperties] = None,
        machines: int = 4,
        shard_size: Optional[int] = None,
        num_reads_per_shard: int = 25,
        annealing_time_us: float = 20.0,
        max_rounds: int = 32,
        patience: int = 3,
        seed: Optional[int] = None,
        embedding_seed: int = 0,
        max_workers: Optional[int] = None,
    ):
        if machines < 1:
            raise ValueError("machines must be >= 1")
        self.properties = properties or MachineProperties()
        self.machines = machines
        template = _fleet_machine(self.properties)
        self.chip_qubits = template.num_qubits
        self.shard_size = (
            shard_size if shard_size is not None
            else max(4, self.chip_qubits // 4)
        )
        if self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.num_reads_per_shard = num_reads_per_shard
        self.annealing_time_us = annealing_time_us
        self.max_rounds = max_rounds
        self.patience = patience
        self.embedding_seed = embedding_seed
        self.max_workers = max_workers
        self._rng = np.random.default_rng(seed)
        # Structure-keyed embedding cache: one embedding per region
        # serves every round and every read.
        self._embedding_cache: Dict[Tuple, Optional[Embedding]] = {}

    # ------------------------------------------------------------------
    def sample(
        self,
        model: IsingModel,
        num_reads: int = 1,
        max_workers: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> SampleSet:
        """Minimize ``model`` by sharded dispatch across the fleet.

        Args:
            model: the logical Ising model (any size).
            num_reads: independent decomposed solves, each contributing
                one stitched-and-polished row.
            max_workers: pool width for this call (None -> constructor
                default -> ``machines``); 1 is serial.  Seeds are drawn
                pre-dispatch, so samples are bit-identical either way.
            deadline: optional wall-clock budget, propagated into every
                shard job as a re-armed :class:`Budget`.
        """
        order = list(model.variables)
        if not order:
            return SampleSet.empty([])
        if num_reads < 1:
            raise ValueError("num_reads must be positive")
        workers = max_workers if max_workers is not None else self.max_workers
        if workers is None:
            workers = self.machines
        # Two staggered partitions: rounds alternate between them, so a
        # domain wall pinned at one partition's shard boundary lands in
        # the *interior* of the other's and can be annealed out.
        partitions = [
            self._partition(model, order, offset=0),
            self._partition(model, order, offset=max(1, self.shard_size // 2)),
        ]
        start = time.perf_counter()
        with _trace.span(
            "shard.solve",
            variables=len(order),
            shards=len(partitions[0]),
            machines=self.machines,
            shard_size=self.shard_size,
            chip_qubits=self.chip_qubits,
        ):
            embedded = [
                [(region, self._embedding_for(model, region)) for region in regions]
                for regions in partitions
            ]
            rows = []
            rounds_used = []
            interrupted = False
            for _ in range(num_reads):
                assignment, rounds, read_interrupted = self._solve_one(
                    model, order, embedded, workers, deadline
                )
                rows.append([assignment[v] for v in order])
                rounds_used.append(rounds)
                interrupted = interrupted or read_interrupted
                if deadline is not None and deadline.expired():
                    interrupted = True
                    break
        elapsed = time.perf_counter() - start
        records = np.array(rows, dtype=np.int8)
        info = {
            "solver": "shard",
            "machines": self.machines,
            "shards": len(partitions[0]),
            "shard_size": self.shard_size,
            "chip_qubits": self.chip_qubits,
            "topology": self.properties.topology,
            "num_reads": len(rows),
            "rounds": rounds_used,
            "max_workers": workers,
            "unembeddable_shards": sum(
                1 for _, e in embedded[0] if e is None
            ),
        }
        if interrupted:
            info["deadline_interrupted"] = True
        result = SampleSet.from_array(order, records, model, info=info)
        _observe_sample(
            "shard", result, elapsed,
            machines=self.machines, shards=len(partitions[0]),
            variables=len(order), num_reads=len(rows),
        )
        return result

    # ------------------------------------------------------------------
    def _solve_one(
        self,
        model: IsingModel,
        order: List[Variable],
        embedded: List[List[Tuple[List[Variable], Optional[Embedding]]]],
        workers: int,
        deadline: Optional[Deadline],
    ) -> Tuple[Dict[Variable, int], int, bool]:
        """One decomposed solve: rounds of dispatch + stitch + polish."""
        rng = self._rng
        incumbent: Dict[Variable, int] = {
            v: int(rng.choice([-1, 1])) for v in order
        }
        energy = model.energy(incumbent)
        metrics = _trace.metrics()
        stall = 0
        rounds = 0
        interrupted = False
        while stall < self.patience and rounds < self.max_rounds:
            if deadline is not None and deadline.expired():
                interrupted = True
                break
            rounds += 1
            metrics.counter("shard.rounds").inc()
            shards = embedded[(rounds - 1) % len(embedded)]
            # Every shard seed is drawn here, serially, before any job
            # runs -- the pool cannot change the answer.
            jobs = []
            for region, embedding in shards:
                sub = clamped_subproblem(model, incumbent, region)
                seed = int(rng.integers(0, 2**63))
                budget = deadline.budget() if deadline is not None else None
                jobs.append((
                    self.properties, embedding, sub,
                    self.num_reads_per_shard, self.annealing_time_us,
                    seed, budget,
                ))
            pool_width = min(workers, self.machines, len(jobs))
            if pool_width > 1 and len(jobs) > 1:
                with ProcessPoolExecutor(max_workers=pool_width) as pool:
                    results = list(pool.map(_solve_shard, jobs))
            else:
                results = [_solve_shard(job) for job in jobs]

            improved = False
            for index, (assignment, _sub_energy, elapsed, reads,
                        shard_interrupted) in enumerate(results):
                machine_index = index % self.machines
                _trace.record(
                    f"machine.{machine_index}.sample",
                    duration_s=elapsed,
                    shard=index,
                    reads=reads,
                )
                metrics.counter(f"machine.{machine_index}.samples").inc()
                metrics.counter("shard.jobs").inc()
                interrupted = interrupted or shard_interrupted
                # Stitch: accept a shard against the *full* model energy
                # of the current incumbent (earlier shards this round
                # already moved it).  Plateau moves are accepted too --
                # they let domain walls drift across shard boundaries
                # until a later round annihilates them -- but only a
                # strict improvement resets the stall counter.
                candidate = dict(incumbent)
                candidate.update(assignment)
                candidate_energy = model.energy(candidate)
                if candidate_energy < energy - 1e-12:
                    incumbent, energy = candidate, candidate_energy
                    improved = True
                    metrics.counter("shard.improvements").inc()
                elif candidate_energy <= energy + 1e-12:
                    incumbent, energy = candidate, candidate_energy
            _trace.event(
                "shard.round", round=rounds, energy=energy, improved=improved
            )
            stall = 0 if improved else stall + 1

        # Polish the stitched incumbent with the greedy descent kernel;
        # shard boundaries can leave single-flip defects no shard sees.
        polish_seed = int(rng.integers(0, 2**63))
        initial = np.array([[incumbent[v] for v in order]], dtype=float)
        polished = SteepestDescentSolver(seed=polish_seed).sample(
            model, initial_states=initial, deadline=deadline
        )
        best = polished.first
        return dict(best.assignment), rounds, interrupted

    def _partition(
        self, model: IsingModel, order: List[Variable], offset: int = 0
    ) -> List[List[Variable]]:
        """Deterministic BFS partition into connected chip-sized regions.

        Connected chunks embed with short chains and keep semantically
        related gate variables on the same chip; determinism (no RNG,
        lowest-index seeds, sorted adjacency) keeps the whole solve a
        pure function of (model, seed).  A non-zero ``offset`` caps the
        *first* region at ``offset`` variables, shifting every later
        region boundary -- the staggered partition the round loop
        alternates with so walls never pin at a fixed seam.
        """
        adjacency: Dict[Variable, List[Variable]] = {v: [] for v in order}
        for (u, v), coupling in model.quadratic.items():
            if coupling != 0.0:
                adjacency[u].append(v)
                adjacency[v].append(u)
        position = {v: i for i, v in enumerate(order)}
        for v in adjacency:
            adjacency[v].sort(key=position.__getitem__)
        assigned = set()
        regions: List[List[Variable]] = []
        for start in order:
            if start in assigned:
                continue
            cap = offset if offset and not regions else self.shard_size
            region = []
            queue = [start]
            queued = {start}
            while queue and len(region) < cap:
                v = queue.pop(0)
                if v in assigned:
                    continue
                region.append(v)
                assigned.add(v)
                for u in adjacency[v]:
                    if u not in assigned and u not in queued:
                        queued.add(u)
                        queue.append(u)
            regions.append(region)
        return regions

    def _embedding_for(
        self, model: IsingModel, region: List[Variable]
    ) -> Optional[Embedding]:
        """One cached minor embedding per region structure (or None).

        None marks a region the embedder gave up on; its shards run on
        the tabu fallback inside the workers.
        """
        region_set = set(region)
        key = (
            tuple(sorted(map(str, region))),
            tuple(sorted(
                (str(u), str(v))
                for (u, v), coupling in model.quadratic.items()
                if coupling != 0.0 and u in region_set and v in region_set
            )),
        )
        if key not in self._embedding_cache:
            template = _fleet_machine(self.properties)
            sub = clamped_subproblem(
                model, {v: 1 for v in model.variables}, region
            )
            try:
                self._embedding_cache[key] = find_embedding(
                    source_graph_of(sub),
                    template.working_graph,
                    seed=self.embedding_seed,
                )
            except EmbeddingError:
                _trace.event("shard.unembeddable", variables=len(region))
                _trace.metrics().counter("shard.unembeddable_regions").inc()
                self._embedding_cache[key] = None
        return self._embedding_cache[key]
