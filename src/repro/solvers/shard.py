"""Sharded decomposition across a resilient fleet of annealer machines.

The C16 ceiling: one 2000Q embeds at most a few hundred logical
variables (the paper's Section 6.1 circuits use ~3.7 physical qubits
per logical variable), so any netlist past that simply does not fit.
Bian et al. (2018) show the way out -- partition the logical problem
into hardware-sized subproblems and iterate -- and a serving fleet has
many chips to throw at the pieces.  This module combines both ideas:

1. **Partition** the logical Ising model into connected, chip-sized
   regions (a deterministic BFS sweep over the interaction graph).
2. **Embed** each region once *per machine class*.  Clamping never
   changes a region's interaction structure
   (:func:`~repro.solvers.qbsolv.clamped_subproblem`), so one embedding
   per (region, topology fingerprint) serves every round, and machines
   of the same class -- heterogeneous fleets mix Chimera, Pegasus, and
   Zephyr chips -- share embeddings.
3. **Dispatch** each round's clamped subproblems across the fleet's
   *healthy* machines in a process pool.  Every stochastic input -- the
   per-shard machine-noise/anneal seeds, drawn from the parent RNG
   serially before dispatch -- is baked into the job tuple, so pooled
   results are bit-identical to a serial run, exactly like the gauge
   batches in :mod:`repro.solvers.machine`.  Seeds belong to *shards*,
   not machines: when a machine crashes or flakes mid-round
   (:class:`~repro.solvers.fleet.MachineFaultPlan`), the orphaned shard
   is re-dispatched -- same seed, same job -- to the next healthy
   machine, so within a machine class the answer cannot change.
4. **Stitch** accepted shard results onto the incumbent in fixed region
   order (full-model energy re-check per shard) and iterate until no
   round improves, then **polish** the incumbent with the steepest-
   descent kernel.

Resilience (:mod:`repro.solvers.fleet`): every machine carries rolling
health statistics and a circuit breaker; crashes quarantine machines
permanently, stragglers and corrupted (chain-breaking) machines are
quarantined by policy, and a quarantined-then-recovered machine rejoins
via a single half-open probe shard.  If *no* healthy machine can take a
shard -- or a region embeds on no machine class -- the shard runs on
the local tabu fallback with its pre-drawn seed (``shard.fallback``
event): the fleet degrades, it does not fail.

Checkpoint/resume: given a :class:`~repro.core.cache.CheckpointCache`,
the solver persists its full state -- completed reads, the in-progress
read's incumbent, the parent RNG state, and the fleet's health/breaker
state -- after every stitch round, through the cache's crash-safe
write-temp/fsync/rename disk tier.  ``resume=True`` picks up from the
last completed round bit-identically to the run that was killed.

Observability: the solve runs inside a ``shard.solve`` span with one
``shard.round`` event per round; each shard's wall time lands on
``machine.<i>.sample`` (``i`` = fleet machine index) plus ``shard.*``
and ``fleet.*`` counters on the ambient metrics registry.  A
:class:`~repro.core.deadline.Deadline` propagates into every worker as
a picklable :class:`~repro.core.deadline.Budget` re-armed on the
worker's own clock.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core import trace as _trace
from repro.core.cache import CheckpointCache, options_fingerprint, stable_hash
from repro.core.deadline import Deadline
from repro.core.faults import (
    FaultSpec,
    MachineCrashError,
    TransientSolverError,
    parse_fault_spec,
    spec_fingerprint,
)
from repro.core.trace import observe_sample as _observe_sample
from repro.hardware.embedding import (
    Embedding,
    EmbeddingError,
    embed_ising,
    find_embedding,
    source_graph_of,
    unembed_sampleset,
)
from repro.hardware.scaling import scale_to_hardware
from repro.ising.model import IsingModel
from repro.solvers.fleet import (
    HALF_OPEN,
    Fleet,
    FleetMachine,
    HealthPolicy,
    make_fleet,
    modeled_latency_us,
)
from repro.solvers.greedy import SteepestDescentSolver
from repro.solvers.machine import DWaveSimulator, MachineProperties
from repro.solvers.qbsolv import clamped_subproblem
from repro.solvers.sampleset import SampleSet
from repro.solvers.tabu import TabuSampler

Variable = Hashable

#: Worker-process machine cache: identical properties -> identical
#: working graph, built once per worker instead of once per job.  The
#: cached machine's RNG is re-seeded per job, so reuse cannot leak
#: state between jobs and results stay independent of scheduling.
_MACHINES: Dict[str, DWaveSimulator] = {}


def _fleet_machine(properties: MachineProperties) -> DWaveSimulator:
    key = options_fingerprint(properties)
    machine = _MACHINES.get(key)
    if machine is None:
        machine = DWaveSimulator(properties=properties, seed=0)
        _MACHINES[key] = machine
    return machine


def _solve_shard(job) -> Tuple[Dict, float, float, int, bool, float]:
    """Solve one clamped shard on one simulated machine (pool-safe).

    Module-level so it pickles.  The job tuple carries every stochastic
    input (the shard seed re-arms the machine RNG) plus a picklable
    remaining-seconds budget, so the result is a pure function of the
    job -- independent of which worker runs it, in what order, or on
    which fleet machine the dispatcher placed it.

    Returns ``(assignment, energy, elapsed_s, reads, interrupted,
    chain_break_fraction)``.
    """
    properties, embedding, sub_model, reads, anneal_us, seed, budget, kernel = job
    deadline = budget.start() if budget is not None else None
    start = time.perf_counter()
    chain_breaks = 0.0
    if embedding is None:
        # Fallback shard (unembeddable region or no healthy machine):
        # tabu on the clamped subproblem keeps the shard solvable.
        logical = TabuSampler(seed=seed).sample(
            sub_model, num_reads=1, kernel=kernel, deadline=deadline
        )
    else:
        machine = _fleet_machine(properties)
        machine._rng = np.random.default_rng(seed)
        physical = embed_ising(
            sub_model, embedding, machine.working_graph
        )
        scaled, _ = scale_to_hardware(physical)
        raw = machine.sample_ising(
            scaled,
            num_reads=reads,
            annealing_time_us=anneal_us,
            kernel=kernel,
            deadline=deadline,
        )
        logical = unembed_sampleset(raw, embedding, sub_model)
        chain_breaks = float(logical.info.get("chain_break_fraction", 0.0))
        logical = SteepestDescentSolver(seed=seed).polish(logical, sub_model)
    elapsed = time.perf_counter() - start
    best = logical.first
    interrupted = bool(logical.info.get("deadline_interrupted", False))
    return (
        dict(best.assignment), float(best.energy), elapsed, reads,
        interrupted, chain_breaks,
    )


class ShardSolver:
    """Decompose a too-large model across a resilient machine fleet.

    Args:
        properties: template chip properties.  With no explicit
            ``fleet`` this is the (homogeneous) fleet's machine; with a
            ``--fleet``-style spec string it supplies every
            non-topology property (noise, timing, dropout).
        machines: homogeneous fleet size (ignored when ``fleet`` is
            given).  Fleet size is an execution/attribution and
            *health* concern: shard results are bit-identical for any
            worker count, and identical across fleets of the same
            machine classes.
        shard_size: maximum logical variables per region; defaults to a
            conservative quarter of the *smallest* fleet machine's
            working qubits (chains cost ~4x physical per logical on
            Chimera-class graphs, Section 6.1), so every region fits
            every machine.
        num_reads_per_shard: anneal reads per shard job.
        annealing_time_us: per-anneal time inside each shard job.
        max_rounds: hard cap on stitch rounds per solve.
        patience: stop after this many rounds without improvement.
        seed: drives the incumbent start and every shard seed.
        embedding_seed: seed for the per-region minor embedder.
        max_workers: default pool width (None -> fleet size); 1 forces
            serial execution, which is bit-identical.
        fleet: an explicit fleet -- a :class:`~repro.solvers.fleet.Fleet`,
            a spec string like ``"C16,P8,Z6"``, or a sequence of
            per-machine :class:`MachineProperties`.  ``None`` builds
            the classic homogeneous fleet.
        faults: machine-level chaos -- a
            :class:`~repro.core.faults.FaultSpec` (or spec string) whose
            ``machine_crash``/``machine_straggler``/``machine_flaky``
            clauses drive the deterministic fault plan.
        health_policy: quarantine thresholds
            (:class:`~repro.solvers.fleet.HealthPolicy`).
        kernel: force the sweep tier (``"dense"``/``"sparse"``/
            ``"jit"``) inside every shard's annealing core and the tabu
            fallback; None auto-selects per shard.  Tiers are
            bit-identical, so this never changes answers.
        batch_rounds: pack each round's embedded shards into one
            :class:`~repro.solvers.batch.BatchedSweepJob` kernel
            invocation instead of one machine call (or pool worker) per
            shard.  All programming randomness (per-shard machine noise
            and core seeds) is still drawn from the pre-assigned shard
            seeds, so the *programmed* physical models match unbatched
            dispatch exactly; the packed anneal shares one RNG stream,
            so results are deterministic given the solver seed but not
            sample-identical to unbatched runs.  Health accounting,
            fault plans, and fallback shards behave as before.
        checkpoint: a :class:`~repro.core.cache.CheckpointCache` (or a
            directory path for one) to persist per-round state through;
            ``None`` disables checkpointing.
        resume: look for a checkpoint of this exact run (same model,
            config, seeds, fleet, faults) and continue from it.
    """

    def __init__(
        self,
        properties: Optional[MachineProperties] = None,
        machines: int = 4,
        shard_size: Optional[int] = None,
        num_reads_per_shard: int = 25,
        annealing_time_us: float = 20.0,
        max_rounds: int = 32,
        patience: int = 3,
        seed: Optional[int] = None,
        embedding_seed: int = 0,
        max_workers: Optional[int] = None,
        fleet: Union[Fleet, str, Sequence[MachineProperties], None] = None,
        faults: Union[FaultSpec, str, None] = None,
        health_policy: Optional[HealthPolicy] = None,
        checkpoint: Union[CheckpointCache, str, None] = None,
        resume: bool = False,
        kernel: Optional[str] = None,
        batch_rounds: bool = False,
    ):
        if fleet is None and machines < 1:
            raise ValueError("machines must be >= 1")
        if isinstance(faults, str):
            faults = parse_fault_spec(faults)
        self.faults = faults
        template = properties or MachineProperties()
        self.fleet = make_fleet(
            fleet,
            properties=template,
            machines=machines,
            policy=health_policy,
            faults=faults,
        )
        self.machines = len(self.fleet)
        #: Primary machine class: attribution default and fallback-job
        #: properties.  Homogeneous fleets keep the old single-template
        #: behavior exactly.
        self.properties = self.fleet.machines[0].properties
        class_templates: Dict[str, MachineProperties] = {}
        for member in self.fleet:
            class_templates.setdefault(member.class_key, member.properties)
        self.chip_qubits = min(
            _fleet_machine(props).num_qubits
            for props in class_templates.values()
        )
        self.shard_size = (
            shard_size if shard_size is not None
            else max(4, self.chip_qubits // 4)
        )
        if self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.num_reads_per_shard = num_reads_per_shard
        self.annealing_time_us = annealing_time_us
        self.kernel = kernel
        self.batch_rounds = bool(batch_rounds)
        self.max_rounds = max_rounds
        self.patience = patience
        self.embedding_seed = embedding_seed
        self.max_workers = max_workers
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        # Embeddings keyed on (machine-class fingerprint, region
        # structure): one embedding per class serves every round, every
        # read, and every machine of that class.
        self._embedding_cache: Dict[Tuple, Optional[Embedding]] = {}
        if isinstance(checkpoint, str):
            checkpoint = CheckpointCache(cache_dir=checkpoint)
        self._checkpoint = checkpoint
        self.resume = bool(resume)
        self._rounds_executed = 0
        self._shards_dispatched = 0
        self._shards_completed = 0

    # ------------------------------------------------------------------
    def sample(
        self,
        model: IsingModel,
        num_reads: int = 1,
        max_workers: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> SampleSet:
        """Minimize ``model`` by sharded dispatch across the fleet.

        Args:
            model: the logical Ising model (any size).
            num_reads: independent decomposed solves, each contributing
                one stitched-and-polished row.
            max_workers: pool width for this call (None -> constructor
                default -> fleet size); 1 is serial.  Seeds are drawn
                pre-dispatch, so samples are bit-identical either way.
            deadline: optional wall-clock budget, propagated into every
                shard job as a re-armed :class:`Budget`.
        """
        order = list(model.variables)
        if not order:
            return SampleSet.empty([])
        if num_reads < 1:
            raise ValueError("num_reads must be positive")
        workers = max_workers if max_workers is not None else self.max_workers
        if workers is None:
            workers = self.machines
        # Two staggered partitions: rounds alternate between them, so a
        # domain wall pinned at one partition's shard boundary lands in
        # the *interior* of the other's and can be annealed out.
        partitions = [
            self._partition(model, order, offset=0),
            self._partition(model, order, offset=max(1, self.shard_size // 2)),
        ]
        run_key: Optional[str] = None
        rows: List[List[int]] = []
        rounds_used: List[int] = []
        read_state: Optional[Dict] = None
        resumed = False
        if self._checkpoint is not None:
            run_key = CheckpointCache.key_for(
                self._run_fingerprint(model, num_reads)
            )
            if self.resume:
                saved = self._checkpoint.get(run_key)
                if saved is not None:
                    rows = [list(row) for row in saved["rows"]]
                    rounds_used = list(saved["rounds_used"])
                    read_state = saved["read_state"]
                    self._rng.bit_generator.state = saved["rng_state"]
                    self.fleet.load_state(saved["fleet_state"])
                    resumed = True
        self._rounds_executed = 0
        self._shards_dispatched = 0
        self._shards_completed = 0
        start = time.perf_counter()
        with _trace.span(
            "shard.solve",
            variables=len(order),
            shards=len(partitions[0]),
            machines=self.machines,
            shard_size=self.shard_size,
            chip_qubits=self.chip_qubits,
            fleet=",".join(self.fleet.labels()),
        ):
            if resumed:
                _trace.event(
                    "shard.resume",
                    completed_reads=len(rows),
                    mid_read=read_state is not None,
                    fleet_round=self.fleet.round,
                )
                _trace.metrics().counter("shard.resumes").inc()
            # Warm the primary class's embeddings up-front: the count of
            # regions it cannot embed is part of the run's info.
            embedded = [
                [
                    (region, self._embedding_for(model, region))
                    for region in regions
                ]
                for regions in partitions
            ]
            interrupted = False
            for _ in range(len(rows), num_reads):
                def on_round(snapshot: Dict) -> None:
                    self._save_checkpoint(
                        run_key, rows, rounds_used, snapshot
                    )
                assignment, rounds, read_interrupted = self._solve_one(
                    model, order, partitions, workers, deadline,
                    read_state=read_state,
                    on_round=on_round if run_key is not None else None,
                )
                read_state = None
                rows.append([assignment[v] for v in order])
                rounds_used.append(rounds)
                self._save_checkpoint(run_key, rows, rounds_used, None)
                interrupted = interrupted or read_interrupted
                if deadline is not None and deadline.expired():
                    interrupted = True
                    break
            if (
                run_key is not None
                and not interrupted
                and len(rows) == num_reads
            ):
                self._save_checkpoint(
                    run_key, rows, rounds_used, None, complete=True
                )
        elapsed = time.perf_counter() - start
        records = np.array(rows, dtype=np.int8)
        dispatched = self._shards_dispatched
        info = {
            "solver": "shard",
            "machines": self.machines,
            "shards": len(partitions[0]),
            "shard_size": self.shard_size,
            "chip_qubits": self.chip_qubits,
            "topology": self.properties.topology,
            "num_reads": len(rows),
            "rounds": rounds_used,
            "rounds_executed": self._rounds_executed,
            "max_workers": workers,
            "unembeddable_shards": sum(
                1 for _, e in embedded[0] if e is None
            ),
            "fleet": self.fleet.snapshot(),
            "redispatches": self.fleet.redispatches,
            "shard_fallbacks": self.fleet.fallbacks,
            "shards_dispatched": dispatched,
            "shards_completed": self._shards_completed,
            "shard_completion": (
                self._shards_completed / dispatched if dispatched else 1.0
            ),
        }
        if resumed:
            info["resumed"] = True
        if interrupted:
            info["deadline_interrupted"] = True
        result = SampleSet.from_array(order, records, model, info=info)
        _observe_sample(
            "shard", result, elapsed,
            machines=self.machines, shards=len(partitions[0]),
            variables=len(order), num_reads=len(rows),
        )
        return result

    # ------------------------------------------------------------------
    def _solve_one(
        self,
        model: IsingModel,
        order: List[Variable],
        partitions: List[List[List[Variable]]],
        workers: int,
        deadline: Optional[Deadline],
        read_state: Optional[Dict] = None,
        on_round=None,
    ) -> Tuple[Dict[Variable, int], int, bool]:
        """One decomposed solve: rounds of dispatch + stitch + polish.

        ``read_state`` (a checkpointed mid-read snapshot) replays the
        incumbent/energy/round/stall state of a killed run;
        ``on_round`` is called with the new snapshot after every
        completed round so the checkpoint always reflects the last
        *finished* iteration.
        """
        rng = self._rng
        if read_state is not None:
            incumbent = dict(read_state["incumbent"])
            energy = float(read_state["energy"])
            rounds = int(read_state["rounds"])
            stall = int(read_state["stall"])
        else:
            incumbent = {v: int(rng.choice([-1, 1])) for v in order}
            energy = model.energy(incumbent)
            rounds = 0
            stall = 0
        metrics = _trace.metrics()
        interrupted = False
        while stall < self.patience and rounds < self.max_rounds:
            if deadline is not None and deadline.expired():
                interrupted = True
                break
            rounds += 1
            self._rounds_executed += 1
            metrics.counter("shard.rounds").inc()
            regions = partitions[(rounds - 1) % len(partitions)]
            # Every shard seed is drawn here, serially, before any job
            # runs -- neither the pool nor the dispatcher's machine
            # placement can change the answer.
            shard_jobs = []
            for region in regions:
                sub = clamped_subproblem(model, incumbent, region)
                seed = int(rng.integers(0, 2**63))
                budget = deadline.budget() if deadline is not None else None
                shard_jobs.append((region, sub, seed, budget))
            results = self._dispatch_round(model, shard_jobs, workers)

            improved = False
            for (assignment, _sub_energy, _elapsed, _reads,
                 shard_interrupted, _chain_breaks) in results:
                interrupted = interrupted or shard_interrupted
                # Stitch: accept a shard against the *full* model energy
                # of the current incumbent (earlier shards this round
                # already moved it).  Plateau moves are accepted too --
                # they let domain walls drift across shard boundaries
                # until a later round annihilates them -- but only a
                # strict improvement resets the stall counter.
                candidate = dict(incumbent)
                candidate.update(assignment)
                candidate_energy = model.energy(candidate)
                if candidate_energy < energy - 1e-12:
                    incumbent, energy = candidate, candidate_energy
                    improved = True
                    metrics.counter("shard.improvements").inc()
                elif candidate_energy <= energy + 1e-12:
                    incumbent, energy = candidate, candidate_energy
            _trace.event(
                "shard.round", round=rounds, energy=energy, improved=improved
            )
            stall = 0 if improved else stall + 1
            if on_round is not None:
                on_round({
                    "incumbent": dict(incumbent),
                    "energy": float(energy),
                    "rounds": rounds,
                    "stall": stall,
                })

        # Polish the stitched incumbent with the greedy descent kernel;
        # shard boundaries can leave single-flip defects no shard sees.
        polish_seed = int(rng.integers(0, 2**63))
        initial = np.array([[incumbent[v] for v in order]], dtype=float)
        polished = SteepestDescentSolver(seed=polish_seed).sample(
            model, initial_states=initial, deadline=deadline
        )
        best = polished.first
        return dict(best.assignment), rounds, interrupted

    # ------------------------------------------------------------------
    def _dispatch_round(
        self,
        model: IsingModel,
        shard_jobs: List[Tuple[List[Variable], IsingModel, int, object]],
        workers: int,
    ) -> List[Tuple[Dict, float, float, int, bool, float]]:
        """Place one round's shards on healthy machines and run them.

        Placement is deterministic round-robin over the admitted
        machines; the fault plan is consulted parent-side *before* a
        job ships, so an injected crash or flaky failure orphans the
        shard here -- and it is immediately re-dispatched (same
        pre-drawn seed) to the next healthy machine.  A shard no
        machine can take runs on the local tabu fallback.  Results come
        back aligned with ``shard_jobs`` regardless of placement.
        """
        fleet = self.fleet
        metrics = _trace.metrics()
        round_index = fleet.begin_round()
        count = len(shard_jobs)
        assigned: List[Optional[FleetMachine]] = [None] * count
        embeddings: List[Optional[Embedding]] = [None] * count
        factors = [1.0] * count
        probes: Set[int] = set()
        for index, (region, _sub, _seed, _budget) in enumerate(shard_jobs):
            tried: Set[int] = set()
            while True:
                machine, embedding = self._pick_machine(
                    index, region, model, tried, probes
                )
                if machine is None:
                    # Every breaker is open (or every admitted machine
                    # already failed this shard): local tabu fallback.
                    fleet.fallbacks += 1
                    _trace.event(
                        "shard.fallback",
                        shard=index,
                        reason="no_healthy_machine",
                        round=round_index,
                    )
                    metrics.counter("shard.fallbacks").inc()
                    break
                machine.health.dispatches += 1
                try:
                    factor = fleet.plan.check_dispatch(
                        machine.index, machine.health.dispatches
                    )
                except MachineCrashError:
                    fleet.record_failure(machine, kind="crash", reason="crash")
                    tried.add(machine.index)
                    fleet.redispatches += 1
                    _trace.event(
                        "fleet.redispatch",
                        shard=index,
                        machine=machine.label,
                        reason="crash",
                        round=round_index,
                    )
                    metrics.counter("fleet.redispatches").inc()
                    continue
                except TransientSolverError as exc:
                    fleet.record_failure(
                        machine, kind="transient", reason="failure_rate"
                    )
                    tried.add(machine.index)
                    fleet.redispatches += 1
                    _trace.event(
                        "fleet.redispatch",
                        shard=index,
                        machine=machine.label,
                        reason=exc.kind,
                        round=round_index,
                    )
                    metrics.counter("fleet.redispatches").inc()
                    continue
                assigned[index] = machine
                embeddings[index] = embedding
                factors[index] = factor
                if embedding is None:
                    # The machine is healthy but no fleet class embeds
                    # this region: machine-attributed tabu fallback.
                    fleet.fallbacks += 1
                    _trace.event(
                        "shard.fallback",
                        shard=index,
                        reason="unembeddable",
                        machine=machine.label,
                        round=round_index,
                    )
                    metrics.counter("shard.fallbacks").inc()
                break

        jobs = []
        for index, (_region, sub, seed, budget) in enumerate(shard_jobs):
            machine = assigned[index]
            props = (
                machine.properties if machine is not None else self.properties
            )
            jobs.append((
                props, embeddings[index], sub,
                self.num_reads_per_shard, self.annealing_time_us,
                seed, budget, self.kernel,
            ))
        self._shards_dispatched += count
        pool_width = min(workers, self.machines, len(jobs))
        if self.batch_rounds and len(jobs) > 1:
            results = self._solve_round_batched(jobs)
        elif pool_width > 1 and len(jobs) > 1:
            with ProcessPoolExecutor(max_workers=pool_width) as pool:
                results = list(pool.map(_solve_shard, jobs))
        else:
            results = [_solve_shard(job) for job in jobs]
        self._shards_completed += len(results)

        for index, (_a, _e, elapsed, reads, _int, chain_breaks) in enumerate(
            results
        ):
            metrics.counter("shard.jobs").inc()
            machine = assigned[index]
            if machine is None:
                continue
            # Health decisions key on the *modeled* QPU latency (times
            # any injected straggler factor) -- wall time is recorded
            # for observability only, so verdicts replay bit-identically.
            modeled = factors[index] * modeled_latency_us(
                machine.properties, reads, self.annealing_time_us
            )
            fleet.record_success(
                machine, modeled,
                wall_s=elapsed, chain_break_fraction=chain_breaks,
            )
            _trace.record(
                f"machine.{machine.index}.sample",
                duration_s=elapsed,
                shard=index,
                reads=reads,
            )
            metrics.counter(f"machine.{machine.index}.samples").inc()
        fleet.check_quarantines()
        return results

    def _solve_round_batched(
        self, jobs: List[Tuple]
    ) -> List[Tuple[Dict, float, float, int, bool, float]]:
        """Solve one round's shards in a single packed kernel invocation.

        Mirrors :func:`_solve_shard`'s programming sequence per shard --
        re-seed the machine RNG from the shard seed, embed, scale to
        hardware, apply control noise, draw the core seed -- so the
        programmed physical models are bit-identical to unbatched
        dispatch; only the anneal itself is shared.  Shards whose
        embedded sweep counts differ (heterogeneous ``sweeps_per_us``)
        are grouped into one packed job per sweep count; fallback shards
        (no embedding) run individually on the tabu path as usual.
        """
        from repro.solvers.batch import BatchedSweepJob

        start = time.perf_counter()
        results: List[Optional[Tuple]] = [None] * len(jobs)
        # (num_sweeps) -> list of prepared embedded shards.
        groups: Dict[int, List[Tuple]] = {}
        for index, job in enumerate(jobs):
            props, embedding, sub, reads, anneal_us, seed, budget, _kernel = job
            if embedding is None:
                results[index] = _solve_shard(job)
                continue
            machine = _fleet_machine(props)
            machine._rng = np.random.default_rng(seed)
            physical = embed_ising(sub, embedding, machine.working_graph)
            scaled, _ = scale_to_hardware(physical)
            programmed = machine._apply_control_noise(scaled)
            core_seed = int(machine._rng.integers(0, 2**63))
            num_sweeps = max(8, int(anneal_us * props.sweeps_per_us))
            groups.setdefault(num_sweeps, []).append(
                (index, embedding, sub, scaled, programmed, core_seed,
                 reads, seed, budget)
            )
        for num_sweeps, entries in groups.items():
            batch = BatchedSweepJob(seed=entries[0][5], kernel=self.kernel)
            for (_i, _emb, _sub, _scaled, programmed, _cs, reads,
                 _seed, _budget) in entries:
                batch.add(programmed, num_reads=reads)
            budget = next(
                (e[8] for e in entries if e[8] is not None), None
            )
            deadline = budget.start() if budget is not None else None
            rawsets = batch.run(num_sweeps=num_sweeps, deadline=deadline)
            for (index, embedding, sub, scaled, _prog, _cs, reads,
                 seed, _budget), raw in zip(entries, rawsets):
                # Energies must be re-reported against the clean scaled
                # model, not the noisy one the batch annealed -- same
                # contract as DWaveSimulator.sample_ising.
                clean = SampleSet.from_array(
                    list(raw.variables), raw.records, scaled,
                    info=dict(raw.info),
                )
                logical = unembed_sampleset(clean, embedding, sub)
                chain_breaks = float(
                    logical.info.get("chain_break_fraction", 0.0)
                )
                logical = SteepestDescentSolver(seed=seed).polish(
                    logical, sub
                )
                best = logical.first
                interrupted = bool(
                    raw.info.get("deadline_interrupted", False)
                )
                results[index] = (
                    dict(best.assignment), float(best.energy), 0.0,
                    reads, interrupted, chain_breaks,
                )
        # Wall time is shared: attribute an equal share to each shard so
        # health/observability accounting stays per-shard shaped.
        elapsed_share = (time.perf_counter() - start) / max(1, len(jobs))
        finished = []
        for index, result in enumerate(results):
            assignment, energy, elapsed, reads, interrupted, cb = result
            finished.append(
                (assignment, energy, elapsed or elapsed_share, reads,
                 interrupted, cb)
            )
        _trace.event(
            "shard.batched_round",
            shards=len(jobs),
            packed=sum(len(e) for e in groups.values()),
        )
        _trace.metrics().counter("shard.batched_rounds").inc()
        return finished

    def _pick_machine(
        self,
        shard_index: int,
        region: List[Variable],
        model: IsingModel,
        tried: Set[int],
        probes: Set[int],
    ) -> Tuple[Optional[FleetMachine], Optional[Embedding]]:
        """Deterministic round-robin choice of a machine for one shard.

        Skips machines that already failed this shard and half-open
        machines that have spent their single probe; prefers a machine
        whose class embeds the region, falling back to (machine, None)
        -- the attributed tabu path -- when none does, and (None, None)
        when no machine is admitted at all.
        """
        candidates = [
            m for m in self.fleet.admitted()
            if m.index not in tried
            and not (m.breaker.state == HALF_OPEN and m.index in probes)
        ]
        if not candidates:
            return None, None
        start = shard_index % len(candidates)
        ordered = candidates[start:] + candidates[:start]
        for machine in ordered:
            embedding = self._embedding_for(
                model, region, machine.properties
            )
            if embedding is not None:
                if machine.breaker.state == HALF_OPEN:
                    probes.add(machine.index)
                return machine, embedding
        machine = ordered[0]
        if machine.breaker.state == HALF_OPEN:
            probes.add(machine.index)
        return machine, None

    # ------------------------------------------------------------------
    def _run_fingerprint(self, model: IsingModel, num_reads: int) -> str:
        """Content key binding a checkpoint to this exact run.

        Covers the model's coefficients, the full solver configuration
        (fleet shape, fault plan, seeds, read counts), and the
        requested reads -- a resume can never pick up state from a
        different problem, a differently-damaged fleet, or a different
        seed.
        """
        linear = repr(sorted(
            (str(v), round(float(bias), 12))
            for v, bias in model.linear.items()
        ))
        quadratic = repr(sorted(
            (str(u), str(v), round(float(coupling), 12))
            for (u, v), coupling in model.quadratic.items()
        ))
        faults = (
            spec_fingerprint(self.faults) if self.faults is not None
            else "none"
        )
        return stable_hash(
            "linear:" + linear,
            "quadratic:" + quadratic,
            f"offset:{float(model.offset)!r}",
            "fleet:" + ";".join(
                options_fingerprint(m.properties) for m in self.fleet
            ),
            "faults:" + faults,
            f"shard_size:{self.shard_size}",
            f"reads_per_shard:{self.num_reads_per_shard}",
            f"anneal_us:{self.annealing_time_us!r}",
            f"max_rounds:{self.max_rounds}",
            f"patience:{self.patience}",
            f"seed:{self._seed!r}",
            f"embedding_seed:{self.embedding_seed}",
            f"num_reads:{num_reads}",
            # Batched rounds consume RNG differently, so their
            # checkpoints must never resume an unbatched run (and vice
            # versa).  Appended only when enabled so fingerprints of
            # existing unbatched checkpoints stay valid.
            *(["batch_rounds:1"] if self.batch_rounds else []),
        )

    def _save_checkpoint(
        self,
        run_key: Optional[str],
        rows: List[List[int]],
        rounds_used: List[int],
        read_state: Optional[Dict],
        complete: bool = False,
    ) -> None:
        """Persist run state through the crash-safe cache tier."""
        if self._checkpoint is None or run_key is None:
            return
        self._checkpoint.put(run_key, {
            "complete": complete,
            "rows": [list(row) for row in rows],
            "rounds_used": list(rounds_used),
            "read_state": read_state,
            "rng_state": self._rng.bit_generator.state,
            "fleet_state": self.fleet.state_dict(),
        })

    # ------------------------------------------------------------------
    def _partition(
        self, model: IsingModel, order: List[Variable], offset: int = 0
    ) -> List[List[Variable]]:
        """Deterministic BFS partition into connected chip-sized regions.

        Connected chunks embed with short chains and keep semantically
        related gate variables on the same chip; determinism (no RNG,
        lowest-index seeds, sorted adjacency) keeps the whole solve a
        pure function of (model, seed).  A non-zero ``offset`` caps the
        *first* region at ``offset`` variables, shifting every later
        region boundary -- the staggered partition the round loop
        alternates with so walls never pin at a fixed seam.
        """
        adjacency: Dict[Variable, List[Variable]] = {v: [] for v in order}
        for (u, v), coupling in model.quadratic.items():
            if coupling != 0.0:
                adjacency[u].append(v)
                adjacency[v].append(u)
        position = {v: i for i, v in enumerate(order)}
        for v in adjacency:
            adjacency[v].sort(key=position.__getitem__)
        assigned = set()
        regions: List[List[Variable]] = []
        for start in order:
            if start in assigned:
                continue
            cap = offset if offset and not regions else self.shard_size
            region = []
            queue = [start]
            queued = {start}
            while queue and len(region) < cap:
                v = queue.pop(0)
                if v in assigned:
                    continue
                region.append(v)
                assigned.add(v)
                for u in adjacency[v]:
                    if u not in assigned and u not in queued:
                        queued.add(u)
                        queue.append(u)
            regions.append(region)
        return regions

    def _embedding_for(
        self,
        model: IsingModel,
        region: List[Variable],
        properties: Optional[MachineProperties] = None,
    ) -> Optional[Embedding]:
        """One cached minor embedding per (machine class, region).

        The cache key leads with the machine-class fingerprint (which
        covers the topology fingerprint), so heterogeneous fleets embed
        each region once per distinct chip class and machines of the
        same class share the result.  None marks a region the embedder
        gave up on for that class; its shards run on the tabu fallback.
        """
        properties = properties or self.properties
        region_set = set(region)
        key = (
            options_fingerprint(properties),
            tuple(sorted(map(str, region))),
            tuple(sorted(
                (str(u), str(v))
                for (u, v), coupling in model.quadratic.items()
                if coupling != 0.0 and u in region_set and v in region_set
            )),
        )
        if key not in self._embedding_cache:
            template = _fleet_machine(properties)
            sub = clamped_subproblem(
                model, {v: 1 for v in model.variables}, region
            )
            try:
                self._embedding_cache[key] = find_embedding(
                    source_graph_of(sub),
                    template.working_graph,
                    seed=self.embedding_seed,
                )
            except EmbeddingError:
                _trace.event(
                    "shard.unembeddable",
                    variables=len(region),
                    topology=properties.topology,
                )
                _trace.metrics().counter("shard.unembeddable_regions").inc()
                self._embedding_cache[key] = None
        return self._embedding_cache[key]
