"""Vectorized simulated-annealing sampler (the ``dwave-neal`` stand-in).

Simulated annealing is the classical algorithm that quantum annealing
physically implements minus the tunneling (Section 2); the paper itself
lists it as a valid software minimizer for the compiled Hamiltonians.

Implementation notes:

- All reads anneal in parallel as rows of a numpy spin matrix.
- Local fields ``f = h + J s`` are maintained incrementally through the
  shared sweep kernels in :mod:`repro.solvers.kernels`: a single
  spin-flip proposal is O(num_reads) to evaluate, and the field update
  is O(num_reads * n) on the dense kernel or O(num_reads * degree) on
  the sparse/jit kernels.  Embedded problems (Chimera degree <= 6) pick
  the sparse kernel automatically -- or the numba-compiled ``jit`` tier
  when numba is installed.
- The temperature follows a geometric beta schedule whose default range
  is derived from the model's coefficient magnitudes, mirroring neal's
  heuristic: hot enough to accept the worst single flip with probability
  1/2, cold enough that the smallest energy step is frozen out.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from repro.core.trace import observe_sample as _observe_sample
from repro.ising.model import IsingModel
from repro.solvers import kernels
from repro.solvers.sampleset import SampleSet


def default_beta_range(model: IsingModel) -> Tuple[float, float]:
    """Heuristic (beta_hot, beta_cold) from coefficient magnitudes."""
    field = {v: abs(bias) for v, bias in model.linear.items()}
    for (u, v), coupling in model.quadratic.items():
        field[u] = field.get(u, 0.0) + abs(coupling)
        field[v] = field.get(v, 0.0) + abs(coupling)
    max_delta = 2.0 * max(field.values(), default=1.0)
    nonzero = [abs(c) for c in model.linear.values() if c != 0.0]
    nonzero += [abs(c) for c in model.quadratic.values() if c != 0.0]
    min_delta = 2.0 * (min(nonzero) if nonzero else 1.0)
    beta_hot = np.log(2.0) / max(max_delta, 1e-12)
    beta_cold = np.log(100.0) / max(min_delta, 1e-12)
    if beta_cold <= beta_hot:
        beta_cold = beta_hot * 10.0
    return float(beta_hot), float(beta_cold)


class SimulatedAnnealingSampler:
    """Metropolis single-spin-flip simulated annealing over Ising models."""

    def __init__(self, seed: Optional[int] = None):
        self._rng = np.random.default_rng(seed)

    def sample(
        self,
        model: IsingModel,
        num_reads: int = 100,
        num_sweeps: int = 1000,
        beta_range: Optional[Tuple[float, float]] = None,
        initial_states: Optional[np.ndarray] = None,
        kernel: Optional[str] = None,
        deadline=None,
    ) -> SampleSet:
        """Anneal ``num_reads`` independent replicas of the model.

        Args:
            model: the Ising model to minimize.
            num_reads: number of independent anneals (paper Section 5.4
                runs thousands to amortize overhead and raise the chance
                of a correct solution).
            num_sweeps: Metropolis sweeps per anneal; each sweep proposes
                one flip per variable.
            beta_range: (hot, cold) inverse temperatures; defaults to a
                range derived from the coefficients.
            initial_states: optional (num_reads, n) spin matrix (values
                strictly in {-1, +1}) to start from instead of uniform
                random states.
            kernel: ``"dense"``/``"sparse"``/``"jit"`` to force a sweep
                tier; None picks by model size, density, and read-batch
                width (:func:`repro.solvers.kernels.choose_kernel`).
                ``"jit"`` needs numba and falls back to ``"sparse"``
                (warning once) without it.
            deadline: optional :class:`~repro.core.deadline.Deadline`;
                the sweep loop stops cooperatively at sweep-batch
                granularity when it expires (never raises).  A short run
                sets ``info["deadline_interrupted"]`` and reports the
                sweeps actually completed.

        Returns:
            A :class:`SampleSet` sorted by energy, with timing info under
            ``info["sampling_time_s"]`` and the sweep rate under
            ``info["sweeps_per_s"]``.
        """
        order = list(model.variables)
        n = len(order)
        if n == 0:
            return SampleSet.empty([])
        if num_reads < 1:
            raise ValueError("num_reads must be positive")

        _, h_vec, indptr, indices, data = model.to_csr()
        chosen = kernels.choose_kernel(n, len(indices), kernel, num_reads=num_reads)
        if beta_range is None:
            beta_range = default_beta_range(model)
        beta_hot, beta_cold = beta_range
        if beta_hot <= 0 or beta_cold < beta_hot:
            raise ValueError(f"invalid beta range {beta_range!r}")
        betas = np.geomspace(beta_hot, beta_cold, num_sweeps)

        start = time.perf_counter()
        if initial_states is not None:
            raw = np.asarray(initial_states)
            if raw.shape != (num_reads, n):
                raise ValueError(
                    f"initial_states must be ({num_reads}, {n}), got {raw.shape}"
                )
            bad = np.abs(raw) != 1
            if bad.any():
                offender = raw[bad].ravel()[0]
                raise ValueError(
                    "initial_states must contain only +/-1 spins, "
                    f"found {offender!r}"
                )
            spins = raw.astype(float)
        else:
            spins = self._rng.choice([-1.0, 1.0], size=(num_reads, n))

        # Local fields: fields[r, i] = h_i + sum_j J_ij s_rj.
        fields = kernels.init_local_fields(h_vec, indptr, indices, data, spins)
        sweep_stats: dict = {}
        accepted = kernels.run_metropolis_sweeps(
            self._rng, spins, fields, betas, chosen, indptr, indices, data,
            deadline=deadline, stats=sweep_stats,
        )
        elapsed = time.perf_counter() - start
        completed = sweep_stats.get("sweeps_completed", num_sweeps)

        info = {
            "solver": "simulated-annealing",
            "kernel": chosen,
            "num_reads": num_reads,
            "num_sweeps": num_sweeps,
            "beta_range": (float(beta_hot), float(beta_cold)),
            "sampling_time_s": elapsed,
            "sweeps_per_s": num_sweeps / elapsed if elapsed > 0 else 0.0,
            "accepted_flips": int(accepted),
        }
        if completed < num_sweeps:
            info["deadline_interrupted"] = True
            info["num_sweeps_completed"] = int(completed)
        result = SampleSet.from_array(
            order,
            spins.astype(np.int8),
            model,
            info=info,
        )
        _observe_sample("sa", result, elapsed, kernel=chosen,
                        num_reads=num_reads, num_sweeps=num_sweeps,
                        variables=n)
        return result
