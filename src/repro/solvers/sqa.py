"""Simulated quantum annealing: path-integral Monte Carlo.

Section 2 of the paper notes its compilation approach applies equally to
classical annealers such as "Hitachi's simulated quantum annealer",
which minimizes the same H(sigma) via the path-integral Monte Carlo
method (Okuyama, Hayashi & Yamaoka, ICRC 2017).  This module implements
that algorithm.

The transverse-field Ising Hamiltonian

    H(s) = A(s) * sum_i sigma^x_i  +  B(s) * H_problem(sigma^z)

is Suzuki-Trotter decomposed into P coupled classical replicas
("imaginary-time slices") of the problem.  Replica k sees the problem
couplings scaled by B/P plus a ferromagnetic coupling

    J_perp = -(P*T/2) * ln(tanh(A / (P*T)))

between each spin and its copies in the neighboring slices.  Annealing
ramps A down (B up), letting quantum-style fluctuations -- collective
flips that tunnel through barriers -- relax the system; at the end, each
replica is a candidate classical solution.

All ``num_reads`` trajectories run simultaneously: the Monte Carlo
state is one ``(num_reads * trotter_slices, n)`` spin matrix, so a
single flip proposal is vectorized across every read and every slice,
and the incremental field updates go through the shared dense/sparse
kernels in :mod:`repro.solvers.kernels`.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.core.trace import observe_sample as _observe_sample

import numpy as np

from repro.ising.model import IsingModel
from repro.solvers import kernels
from repro.solvers.sampleset import SampleSet


class PathIntegralAnnealer:
    """Transverse-field Ising model annealer via Suzuki-Trotter PIMC."""

    def __init__(self, seed: Optional[int] = None):
        self._rng = np.random.default_rng(seed)

    def sample(
        self,
        model: IsingModel,
        num_reads: int = 10,
        num_sweeps: int = 500,
        trotter_slices: int = 16,
        temperature: float = 0.05,
        transverse_field: Tuple[float, float] = (2.0, 1e-8),
        kernel: Optional[str] = None,
        deadline=None,
    ) -> SampleSet:
        """Anneal the transverse field from strong to (near) zero.

        Args:
            model: the problem Hamiltonian (the sigma^z part).
            num_reads: independent annealing trajectories (all run
                batched in one spin matrix).
            num_sweeps: Monte Carlo sweeps per trajectory; the field
                ramps linearly across them.
            trotter_slices: P, the number of imaginary-time replicas.
            temperature: the simulation temperature T (in energy units
                of the problem); low T sharpens the final state.
            transverse_field: (initial, final) field strengths A; the
                initial value should dominate the problem couplings, the
                final value should be ~0.
            kernel: ``"dense"``/``"sparse"``/``"jit"`` to force a sweep
                tier; None picks by model size, density, and batch width
                (rows here = reads x Trotter slices).  The jit tier
                compiles the flip updater only -- SQA's accept math
                consumes RNG conditionally on the uphill count, so the
                accept loop stays in numpy for all tiers.
            deadline: optional :class:`~repro.core.deadline.Deadline`;
                the Monte Carlo loop polls it once per sweep (PIMC
                sweeps span all slices, so one sweep *is* the batch)
                and stops cleanly when it expires, returning the best
                replicas found so far with
                ``info["deadline_interrupted"]`` set.

        Returns:
            A :class:`SampleSet` with one row per read: the best replica
            of the final configuration (lowest problem energy).  Timing
            lands in ``info["sampling_time_s"]`` with the per-read sweep
            rate under ``info["sweeps_per_s"]`` (and ``num_reads``), so
            SQA throughput is directly comparable with neal's.
        """
        order = list(model.variables)
        n = len(order)
        if n == 0:
            return SampleSet.empty([])
        if num_reads < 1:
            raise ValueError("num_reads must be positive")
        if trotter_slices < 2:
            raise ValueError("trotter_slices must be >= 2")
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        field_start, field_end = transverse_field
        if field_start <= 0 or field_end <= 0 or field_end > field_start:
            raise ValueError("transverse_field must ramp from high to low > 0")

        _, h_vec, indptr, indices, data = model.to_csr()
        chosen = kernels.choose_kernel(
            n, len(indices), kernel, num_reads=num_reads * trotter_slices
        )
        beta = 1.0 / temperature
        slices = trotter_slices
        # Problem couplings are shared by each slice at strength 1/P
        # (the B(s) schedule is folded into the constant problem term,
        # the standard PIMC simplification).
        slice_beta = beta / slices
        fields_schedule = np.linspace(field_start, field_end, num_sweeps)

        start = time.perf_counter()
        # One batched Monte Carlo state: row r*P + k is slice k of read r.
        spins = self._rng.choice([-1.0, 1.0], size=(num_reads * slices, n))
        local = kernels.init_local_fields(h_vec, indptr, indices, data, spins)
        flip = kernels.make_flip_updater(chosen, indptr, indices, data)

        accepted = 0
        completed = 0
        for field in fields_schedule:
            if deadline is not None and deadline.expired():
                break
            # Inter-slice ferromagnetic coupling from the Trotter
            # decomposition; diverges as the field -> 0, freezing the
            # replicas together.
            gamma = max(field, 1e-12)
            j_perp = -0.5 / slice_beta * np.log(np.tanh(gamma * slice_beta))
            for i in self._rng.permutation(n):
                column = spins[:, i]
                ring = column.reshape(num_reads, slices)
                neighbors = (
                    np.roll(ring, 1, axis=1) + np.roll(ring, -1, axis=1)
                ).reshape(-1)
                # Action change of flipping variable i in slice k of
                # read r: problem energy changes by -2 s * local; the
                # ferromagnetic inter-slice energy -J_perp s (up+down)
                # changes by +2 J_perp s (up+down).
                delta_action = 2.0 * slice_beta * column * (
                    j_perp * neighbors - local[:, i]
                )
                accept = delta_action <= 0.0
                uphill = ~accept
                if uphill.any():
                    accept[uphill] = (
                        self._rng.random(int(uphill.sum()))
                        < np.exp(-delta_action[uphill])
                    )
                if accept.any():
                    rows = np.where(accept)[0]
                    flip(spins, local, i, rows)
                    accepted += len(rows)
            completed += 1

        # Report each read's best slice as its classical readout.
        energies = kernels.batched_energies(
            h_vec, indptr, indices, data, spins
        ).reshape(num_reads, slices)
        best_slice = np.argmin(energies, axis=1)
        rows = best_slice + np.arange(num_reads) * slices
        best_rows = spins[rows].astype(np.int8)
        elapsed = time.perf_counter() - start

        info = {
            "solver": "simulated-quantum-annealing",
            "kernel": chosen,
            "trotter_slices": slices,
            "temperature": temperature,
            "num_reads": num_reads,
            "num_sweeps": num_sweeps,
            "sampling_time_s": elapsed,
            "sweeps_per_s": num_sweeps / elapsed if elapsed > 0 else 0.0,
            "accepted_flips": int(accepted),
        }
        if completed < num_sweeps:
            info["deadline_interrupted"] = True
            info["num_sweeps_completed"] = int(completed)
        result = SampleSet.from_array(
            order,
            best_rows,
            model,
            info=info,
        )
        _observe_sample("sqa", result, elapsed, kernel=chosen,
                        num_reads=num_reads, num_sweeps=num_sweeps,
                        trotter_slices=slices)
        return result
