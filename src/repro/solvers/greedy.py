"""Steepest-descent postprocessing (SAPI's 'optimization' postprocess).

Deterministic single-spin-flip descent: repeatedly flip the spin whose
flip lowers the energy most, per read, until no flip helps.  Used to
polish annealer samples into local minima; also usable as a (weak)
standalone solver from random starts.

All reads descend simultaneously, and each accepted flip's field update
goes through the shared dense/sparse kernels -- on embedded (degree <=
6) models the sparse backend makes a descent step O(reads * degree)
instead of O(reads * n).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.trace import observe_sample as _observe_sample
from repro.ising.model import IsingModel
from repro.solvers import kernels
from repro.solvers.sampleset import SampleSet


class SteepestDescentSolver:
    """Vectorized greedy descent over many reads at once."""

    def __init__(self, seed: Optional[int] = None):
        self._rng = np.random.default_rng(seed)

    def sample(
        self,
        model: IsingModel,
        num_reads: int = 10,
        initial_states: Optional[np.ndarray] = None,
        max_sweeps: int = 1000,
        kernel: Optional[str] = None,
        deadline=None,
    ) -> SampleSet:
        """Descend to a local minimum from each start.

        Args:
            model: the Ising model to minimize.
            num_reads: reads when ``initial_states`` is None (random
                starts); otherwise inferred from the given states.
            initial_states: optional (reads, n) spin matrix to polish.
            max_sweeps: safety bound on descent sweeps.
            kernel: ``"dense"``/``"sparse"``/``"jit"`` to force a
                field-update tier; None picks by model size, density,
                and the number of rows descending together.
            deadline: optional :class:`~repro.core.deadline.Deadline`;
                checked once per descent sweep.  Expiry stops the
                descent cleanly mid-way (states may not yet be local
                minima) and sets ``info["deadline_interrupted"]``.
        """
        order = list(model.variables)
        n = len(order)
        if n == 0:
            return SampleSet.empty([])
        _, h_vec, indptr, indices, data = model.to_csr()

        if initial_states is not None:
            spins = np.array(initial_states, dtype=float)
            if spins.ndim != 2 or spins.shape[1] != n:
                raise ValueError(f"initial_states must be (reads, {n})")
        else:
            spins = self._rng.choice([-1.0, 1.0], size=(num_reads, n))
        chosen = kernels.choose_kernel(
            n, len(indices), kernel, num_reads=len(spins)
        )

        start = time.perf_counter()
        fields = kernels.init_local_fields(h_vec, indptr, indices, data, spins)
        flip = kernels.make_mixed_flip_updater(chosen, indptr, indices, data)
        interrupted = False
        for _ in range(max_sweeps):
            if deadline is not None and deadline.expired():
                interrupted = True
                break
            # Energy change of each candidate flip; positive s*field
            # means flipping lowers the energy by 2*s*field.
            gains = 2.0 * spins * fields
            best = np.argmax(gains, axis=1)
            rows = np.arange(len(spins))
            improving = gains[rows, best] > 1e-12
            if not improving.any():
                break
            flip(spins, fields, rows[improving], best[improving])

        elapsed = time.perf_counter() - start
        info = {"solver": "steepest-descent", "kernel": chosen}
        if interrupted:
            info["deadline_interrupted"] = True
        result = SampleSet.from_array(
            order,
            spins.astype(np.int8),
            model,
            info=info,
        )
        _observe_sample("greedy", result, elapsed, kernel=chosen,
                        num_reads=len(spins))
        return result

    def polish(self, sampleset: SampleSet, model: IsingModel) -> SampleSet:
        """Descend from an existing sample set's rows."""
        order = list(model.variables)
        positions = [sampleset.variables.index(v) for v in order]
        return self.sample(
            model, initial_states=sampleset.records[:, positions]
        )
