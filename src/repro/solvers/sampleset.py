"""Sample sets: collections of spin assignments returned by samplers.

All quantum computers are fundamentally stochastic (Section 5.4), so a
run is always *many* anneals, and qmasm "can run a program arbitrarily
many times and report statistics on the results".  A :class:`SampleSet`
is that collection: rows of spins over a fixed variable order, each with
an energy and an occurrence count, sorted by energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.ising.model import IsingModel, spin_to_bool

Variable = Hashable


@dataclass(frozen=True)
class Sample:
    """One spin assignment with its energy and occurrence count."""

    assignment: Mapping[Variable, int]
    energy: float
    num_occurrences: int = 1

    def booleans(self) -> Dict[Variable, bool]:
        """The assignment as Booleans (spin -1 -> False, +1 -> True)."""
        return {v: spin_to_bool(s) for v, s in self.assignment.items()}

    def __getitem__(self, v: Variable) -> int:
        return self.assignment[v]


class SampleSet:
    """An energy-sorted collection of samples over a shared variable order.

    Construction is normally via :meth:`from_array` (samplers produce
    numpy spin matrices) or :meth:`from_samples` (dict-shaped results).
    """

    def __init__(
        self,
        variables: Sequence[Variable],
        records: np.ndarray,
        energies: np.ndarray,
        occurrences: np.ndarray,
        info: Optional[Dict] = None,
    ):
        if records.ndim != 2 or records.shape[1] != len(variables):
            raise ValueError("records must be (num_samples, num_variables)")
        if records.shape[0] != len(energies) or len(energies) != len(occurrences):
            raise ValueError("records/energies/occurrences length mismatch")
        order = np.argsort(energies, kind="stable")
        self.variables: List[Variable] = list(variables)
        self.records = records[order]
        self.energies = np.asarray(energies, dtype=float)[order]
        self.occurrences = np.asarray(occurrences, dtype=int)[order]
        self.info: Dict = info or {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_array(
        cls,
        variables: Sequence[Variable],
        records: np.ndarray,
        model: IsingModel,
        info: Optional[Dict] = None,
    ) -> "SampleSet":
        """Build from a spin matrix, computing energies from ``model``."""
        records = np.asarray(records, dtype=np.int8)
        energies = model.energies(records.astype(float), order=list(variables))
        occurrences = np.ones(len(records), dtype=int)
        return cls(variables, records, energies, occurrences, info)

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[Mapping[Variable, int]],
        model: IsingModel,
        info: Optional[Dict] = None,
    ) -> "SampleSet":
        if not samples:
            raise ValueError("empty sample list")
        variables = list(samples[0])
        records = np.array(
            [[s[v] for v in variables] for s in samples], dtype=np.int8
        )
        return cls.from_array(variables, records, model, info)

    @classmethod
    def empty(cls, variables: Sequence[Variable]) -> "SampleSet":
        return cls(
            variables,
            np.zeros((0, len(variables)), dtype=np.int8),
            np.zeros(0),
            np.zeros(0, dtype=int),
        )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Sample]:
        for i in range(len(self)):
            yield self._sample(i)

    def _sample(self, i: int) -> Sample:
        assignment = dict(zip(self.variables, (int(s) for s in self.records[i])))
        return Sample(assignment, float(self.energies[i]), int(self.occurrences[i]))

    @property
    def first(self) -> Sample:
        """The lowest-energy sample."""
        if not len(self):
            raise ValueError("empty sample set")
        return self._sample(0)

    def lowest(self, tol: float = 1e-9) -> "SampleSet":
        """The subset of samples within ``tol`` of the minimum energy."""
        if not len(self):
            return self
        mask = self.energies <= self.energies[0] + tol
        return SampleSet(
            self.variables,
            self.records[mask],
            self.energies[mask],
            self.occurrences[mask],
            dict(self.info),
        )

    def total_reads(self) -> int:
        return int(self.occurrences.sum())

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def aggregate(self) -> "SampleSet":
        """Merge duplicate rows, summing occurrence counts."""
        if not len(self):
            return self
        seen: Dict[Tuple[int, ...], int] = {}
        rows, energies, counts = [], [], []
        for i in range(len(self)):
            key = tuple(int(s) for s in self.records[i])
            if key in seen:
                counts[seen[key]] += int(self.occurrences[i])
            else:
                seen[key] = len(rows)
                rows.append(self.records[i])
                energies.append(self.energies[i])
                counts.append(int(self.occurrences[i]))
        return SampleSet(
            self.variables,
            np.array(rows, dtype=np.int8),
            np.array(energies),
            np.array(counts, dtype=int),
            dict(self.info),
        )

    def select(self, variables: Sequence[Variable]) -> "SampleSet":
        """Project onto a subset of variables (energies are kept as-is)."""
        indices = [self.variables.index(v) for v in variables]
        return SampleSet(
            list(variables),
            self.records[:, indices],
            self.energies,
            self.occurrences,
            dict(self.info),
        )

    def relabeled(self, mapping: Mapping[Variable, Variable]) -> "SampleSet":
        return SampleSet(
            [mapping.get(v, v) for v in self.variables],
            self.records,
            self.energies,
            self.occurrences,
            dict(self.info),
        )

    def histogram(self) -> Dict[Tuple[int, ...], int]:
        """Occurrence counts keyed by spin tuples (in variable order)."""
        agg = self.aggregate()
        return {
            tuple(int(s) for s in agg.records[i]): int(agg.occurrences[i])
            for i in range(len(agg))
        }

    def __repr__(self) -> str:
        if not len(self):
            return "SampleSet(empty)"
        return (
            f"SampleSet({len(self)} rows, {self.total_reads()} reads, "
            f"best energy {self.energies[0]:g})"
        )
