"""Constraint solver: the MiniZinc/Chuffed stand-in for Section 6.2.

The paper compares per-solution time on a D-Wave 2000Q against Chuffed
solving the MiniZinc model of Listing 8.  This module provides:

- :class:`CSPModel`: finite-domain variables plus n-ary constraints.
- :class:`CSPSolver`: AC-3 arc-consistency preprocessing for binary
  constraints followed by MRV backtracking search with forward checking
  (the same propagation + search family Chuffed belongs to, minus lazy
  clause generation).
- :func:`parse_minizinc`: a parser for the MiniZinc subset that Listing 8
  uses (``var lo..hi: NAME;`` declarations and binary comparison
  constraints), so the paper's baseline model runs verbatim.
"""

from __future__ import annotations

import itertools
import re
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence

Value = Hashable


class CSPError(Exception):
    """Malformed model or unsupported MiniZinc construct."""


class Constraint:
    """An n-ary constraint: a predicate over specific variables."""

    def __init__(self, variables: Sequence[str], predicate: Callable[..., bool], name: str = ""):
        if not variables:
            raise CSPError("constraint needs at least one variable")
        self.variables = tuple(variables)
        self.predicate = predicate
        self.name = name or f"constraint({', '.join(map(str, variables))})"

    def check(self, assignment: Dict[str, Value]) -> bool:
        """True if satisfied or not yet fully assigned."""
        values = []
        for v in self.variables:
            if v not in assignment:
                return True
            values.append(assignment[v])
        return bool(self.predicate(*values))

    def __repr__(self) -> str:
        return f"Constraint({self.name})"


class CSPModel:
    """A finite-domain constraint-satisfaction model."""

    def __init__(self):
        self.domains: Dict[str, List[Value]] = {}
        self.constraints: List[Constraint] = []

    def add_variable(self, name: str, domain: Iterable[Value]) -> None:
        domain = list(domain)
        if not domain:
            raise CSPError(f"empty domain for {name!r}")
        if name in self.domains:
            raise CSPError(f"duplicate variable {name!r}")
        self.domains[name] = domain

    def add_constraint(
        self,
        variables: Sequence[str],
        predicate: Callable[..., bool],
        name: str = "",
    ) -> None:
        for v in variables:
            if v not in self.domains:
                raise CSPError(f"constraint references unknown variable {v!r}")
        self.constraints.append(Constraint(variables, predicate, name))

    def not_equal(self, a: str, b: str) -> None:
        """Convenience for the map-coloring style ``a != b`` constraint."""
        self.add_constraint([a, b], lambda x, y: x != y, name=f"{a} != {b}")

    def all_different(self, variables: Sequence[str]) -> None:
        for a, b in itertools.combinations(variables, 2):
            self.not_equal(a, b)

    def is_satisfied(self, assignment: Dict[str, Value]) -> bool:
        """Check a *complete* assignment against every constraint."""
        if set(assignment) != set(self.domains):
            return False
        return all(c.check(assignment) for c in self.constraints)


class CSPSolver:
    """AC-3 + MRV backtracking with forward checking."""

    def __init__(self):
        self.nodes_explored = 0

    # ------------------------------------------------------------------
    def solve(self, model: CSPModel) -> Optional[Dict[str, Value]]:
        """Return the first solution found, or None if unsatisfiable."""
        for solution in self.solutions(model):
            return solution
        return None

    def solve_all(self, model: CSPModel, limit: Optional[int] = None) -> List[Dict[str, Value]]:
        out = []
        for solution in self.solutions(model):
            out.append(solution)
            if limit is not None and len(out) >= limit:
                break
        return out

    def count_solutions(self, model: CSPModel) -> int:
        return sum(1 for _ in self.solutions(model))

    # ------------------------------------------------------------------
    def solutions(self, model: CSPModel):
        """Generate all solutions (depth-first)."""
        self.nodes_explored = 0
        domains = {v: list(dom) for v, dom in model.domains.items()}
        binary = [c for c in model.constraints if len(c.variables) == 2]
        if not self._ac3(domains, binary):
            return
        yield from self._search(domains, {}, model)

    def _ac3(self, domains: Dict[str, List[Value]], binary: List[Constraint]) -> bool:
        """Prune binary-inconsistent values; False if a domain empties."""
        arcs = []
        for c in binary:
            a, b = c.variables
            arcs.append((a, b, c))
            arcs.append((b, a, c))
        queue = list(arcs)
        while queue:
            x, y, constraint = queue.pop()
            if self._revise(domains, x, y, constraint):
                if not domains[x]:
                    return False
                for a, b, c in arcs:
                    if b == x and a != y:
                        queue.append((a, b, c))
        return True

    @staticmethod
    def _revise(
        domains: Dict[str, List[Value]], x: str, y: str, constraint: Constraint
    ) -> bool:
        a, b = constraint.variables

        def holds(vx, vy):
            return constraint.predicate(vx, vy) if (a, b) == (x, y) else constraint.predicate(vy, vx)

        keep = [vx for vx in domains[x] if any(holds(vx, vy) for vy in domains[y])]
        if len(keep) != len(domains[x]):
            domains[x] = keep
            return True
        return False

    def _search(self, domains, assignment, model):
        if len(assignment) == len(model.domains):
            yield dict(assignment)
            return
        # MRV: branch on the unassigned variable with the fewest values.
        var = min(
            (v for v in model.domains if v not in assignment),
            key=lambda v: len(domains[v]),
        )
        for value in domains[var]:
            self.nodes_explored += 1
            assignment[var] = value
            if all(c.check(assignment) for c in model.constraints if var in c.variables):
                pruned = self._forward_check(domains, assignment, model, var)
                if pruned is not None:
                    yield from self._search(pruned, assignment, model)
            del assignment[var]

    def _forward_check(self, domains, assignment, model, var):
        """Filter neighbors' domains through constraints now one-short.

        Returns the reduced domain map, or None on a wipeout.
        """
        new_domains = {v: list(dom) for v, dom in domains.items()}
        new_domains[var] = [assignment[var]]
        for constraint in model.constraints:
            if var not in constraint.variables:
                continue
            unassigned = [v for v in constraint.variables if v not in assignment]
            if len(unassigned) != 1:
                continue
            target = unassigned[0]
            keep = []
            for candidate in new_domains[target]:
                assignment[target] = candidate
                if constraint.check(assignment):
                    keep.append(candidate)
                del assignment[target]
            new_domains[target] = keep
            if not keep:
                return None
        return new_domains


# ----------------------------------------------------------------------
# MiniZinc subset (enough for the paper's Listing 8)
# ----------------------------------------------------------------------
_VAR_RE = re.compile(r"^var\s+(-?\d+)\s*\.\.\s*(-?\d+)\s*:\s*([A-Za-z_]\w*)$")
_CONSTRAINT_RE = re.compile(
    r"^constraint\s+([A-Za-z_]\w*|-?\d+)\s*(!=|==|=|<=|>=|<|>)\s*([A-Za-z_]\w*|-?\d+)$"
)
_SOLVE_RE = re.compile(r"^solve\s+satisfy$")

_OPERATORS: Dict[str, Callable[[Value, Value], bool]] = {
    "!=": lambda a, b: a != b,
    "==": lambda a, b: a == b,
    "=": lambda a, b: a == b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
}


def parse_minizinc(source: str) -> CSPModel:
    """Parse the MiniZinc subset used by the paper's Listing 8.

    Supports ``var lo..hi: NAME;``, binary comparison constraints between
    variables and/or integer literals, ``%`` comments, and
    ``solve satisfy;``.  Raises :class:`CSPError` on anything else.
    """
    model = CSPModel()
    for raw_line in source.splitlines():
        line = raw_line.split("%", 1)[0].strip()
        if not line:
            continue
        for statement in filter(None, (s.strip() for s in line.split(";"))):
            if _parse_statement(statement, model):
                continue
            raise CSPError(f"unsupported MiniZinc statement: {statement!r}")
    return model


def _parse_statement(statement: str, model: CSPModel) -> bool:
    match = _VAR_RE.match(statement)
    if match:
        lo, hi, name = int(match.group(1)), int(match.group(2)), match.group(3)
        model.add_variable(name, range(lo, hi + 1))
        return True
    match = _CONSTRAINT_RE.match(statement)
    if match:
        lhs, op, rhs = match.groups()
        predicate = _OPERATORS[op]
        lhs_const = re.fullmatch(r"-?\d+", lhs)
        rhs_const = re.fullmatch(r"-?\d+", rhs)
        if lhs_const and rhs_const:
            if not predicate(int(lhs), int(rhs)):
                raise CSPError(f"trivially false constraint: {statement!r}")
        elif lhs_const:
            value = int(lhs)
            model.add_constraint([rhs], lambda x, v=value, p=predicate: p(v, x), statement)
        elif rhs_const:
            value = int(rhs)
            model.add_constraint([lhs], lambda x, v=value, p=predicate: p(x, v), statement)
        else:
            model.add_constraint([lhs, rhs], predicate, statement)
        return True
    if _SOLVE_RE.match(statement):
        return True
    return False
