"""Run arbitrary (sub)problems on the simulated annealer hardware.

qbsolv's role in the paper's toolchain is to "split large problems into
sub-problems that fit on the D-Wave hardware".  The decomposer in
:mod:`repro.solvers.qbsolv` is solver-agnostic; this module provides the
hardware-backed subsolver: each subproblem is minor-embedded onto the
machine's working graph, scaled into its coefficient ranges, annealed,
unembedded, and polished.  Plugging it into :class:`QBSolv` reproduces
the full qmasm --run-via-qbsolv flow.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.hardware.embedding import (
    Embedding,
    embed_ising,
    find_embedding,
    source_graph_of,
    unembed_sampleset,
)
from repro.hardware.scaling import scale_to_hardware
from repro.ising.model import IsingModel
from repro.solvers.greedy import SteepestDescentSolver
from repro.solvers.machine import DWaveSimulator
from repro.solvers.sampleset import SampleSet


class HardwareSubsolver:
    """Embeds and anneals each model it is handed on a DWaveSimulator.

    Satisfies the qbsolv subsolver protocol
    (``sample(model, num_reads) -> SampleSet``), so::

        machine = DWaveSimulator(...)
        qb = QBSolv(subproblem_size=40,
                    subsolver=HardwareSubsolver(machine))

    solves problems of any size by decomposition, with every subproblem
    actually running through the hardware model.
    """

    def __init__(
        self,
        machine: Optional[DWaveSimulator] = None,
        num_reads: int = 25,
        annealing_time_us: float = 20.0,
        embedding_seed: int = 0,
        polish: bool = True,
    ):
        self.machine = machine or DWaveSimulator(seed=embedding_seed)
        self.num_reads = num_reads
        self.annealing_time_us = annealing_time_us
        self.embedding_seed = embedding_seed
        self.polish = polish
        self._descent = SteepestDescentSolver(seed=embedding_seed)
        # Structure-keyed embedding cache: qbsolv re-solves subproblems
        # over the same variable subsets many times.
        self._embedding_cache: Dict[Tuple, Embedding] = {}

    def sample(self, model: IsingModel, num_reads: Optional[int] = None) -> SampleSet:
        """Embed, anneal, unembed, and (optionally) polish ``model``."""
        if len(model) == 0:
            return SampleSet.empty([])
        reads = num_reads if num_reads else self.num_reads
        embedding = self._embed(model)
        physical = embed_ising(
            model, embedding, self.machine.working_graph
        )
        scaled, _ = scale_to_hardware(physical)
        raw = self.machine.sample_ising(
            scaled, num_reads=reads, annealing_time_us=self.annealing_time_us
        )
        logical = unembed_sampleset(raw, embedding, model)
        if self.polish and len(logical):
            logical = self._descent.polish(logical, model)
        return logical

    def _embed(self, model: IsingModel) -> Embedding:
        key = (
            tuple(sorted(map(str, model.variables))),
            tuple(sorted((str(u), str(v)) for (u, v) in model.quadratic)),
        )
        if key not in self._embedding_cache:
            self._embedding_cache[key] = find_embedding(
                source_graph_of(model),
                self.machine.working_graph,
                seed=self.embedding_seed,
            )
        return self._embedding_cache[key]
