"""Tabu search over Ising models: the core heuristic inside qbsolv.

A deterministic-given-seed single-solution improver: steepest-descent
single-spin flips with a recency tabu list and aspiration (a tabu move
is allowed if it beats the best energy seen).  Restarts from random
states until the sweep budget is exhausted.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ising.model import IsingModel
from repro.solvers.sampleset import SampleSet


class TabuSampler:
    """Multi-restart tabu search."""

    def __init__(self, seed: Optional[int] = None):
        self._rng = np.random.default_rng(seed)

    def sample(
        self,
        model: IsingModel,
        num_reads: int = 10,
        tenure: Optional[int] = None,
        max_iter: int = 2000,
    ) -> SampleSet:
        """Run ``num_reads`` independent tabu searches.

        Args:
            model: the Ising model to minimize.
            num_reads: independent restarts, each contributing one row.
            tenure: tabu tenure (iterations a flipped variable stays
                frozen); defaults to ``min(20, n // 4 + 1)``.
            max_iter: flip iterations per restart.
        """
        order = list(model.variables)
        n = len(order)
        if n == 0:
            return SampleSet.empty([])
        _, h_vec, j_mat = model.to_arrays()
        if tenure is None:
            tenure = min(20, n // 4 + 1)

        rows = np.empty((num_reads, n), dtype=np.int8)
        for read in range(num_reads):
            rows[read] = self._search(h_vec, j_mat, tenure, max_iter)
        return SampleSet.from_array(
            order, rows, model, info={"solver": "tabu", "tenure": tenure}
        )

    def _search(
        self, h_vec: np.ndarray, j_mat: np.ndarray, tenure: int, max_iter: int
    ) -> np.ndarray:
        n = len(h_vec)
        spins = self._rng.choice([-1.0, 1.0], size=n)
        fields = h_vec + j_mat @ spins
        energy = float(h_vec @ spins + 0.5 * spins @ j_mat @ spins)
        best_spins = spins.copy()
        best_energy = energy
        tabu_until = np.zeros(n, dtype=int)

        for it in range(max_iter):
            deltas = -2.0 * spins * fields
            allowed = tabu_until <= it
            # Aspiration: permit a tabu flip that would beat the best.
            aspiring = energy + deltas < best_energy - 1e-12
            candidates = allowed | aspiring
            if not candidates.any():
                candidates = np.ones(n, dtype=bool)
            masked = np.where(candidates, deltas, np.inf)
            i = int(np.argmin(masked))
            energy += float(deltas[i])
            old = spins[i]
            spins[i] = -old
            fields -= 2.0 * old * j_mat[i]
            tabu_until[i] = it + 1 + int(self._rng.integers(0, tenure + 1))
            if energy < best_energy - 1e-12:
                best_energy = energy
                best_spins = spins.copy()
        return best_spins.astype(np.int8)
