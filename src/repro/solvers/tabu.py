"""Tabu search over Ising models: the core heuristic inside qbsolv.

A deterministic-given-seed single-solution improver: steepest-descent
single-spin flips with a recency tabu list and aspiration (a tabu move
is allowed if it beats the best energy seen).  Restarts from random
states until the sweep budget is exhausted.

All restart states and their local fields are initialized in one batched
pass through :mod:`repro.solvers.kernels`; the per-read search then runs
on row views, with each flip's field update going through the shared
dense/sparse kernel so embedded (degree <= 6) models pay O(degree) per
move instead of O(n).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.trace import observe_sample as _observe_sample
from repro.ising.model import IsingModel
from repro.solvers import kernels
from repro.solvers.sampleset import SampleSet


class TabuSampler:
    """Multi-restart tabu search."""

    def __init__(self, seed: Optional[int] = None):
        self._rng = np.random.default_rng(seed)

    def sample(
        self,
        model: IsingModel,
        num_reads: int = 10,
        tenure: Optional[int] = None,
        max_iter: int = 2000,
        kernel: Optional[str] = None,
        deadline=None,
    ) -> SampleSet:
        """Run ``num_reads`` independent tabu searches.

        Args:
            model: the Ising model to minimize.
            num_reads: independent restarts, each contributing one row.
            tenure: tabu tenure (iterations a flipped variable stays
                frozen); defaults to ``min(20, n // 4 + 1)``.
            max_iter: flip iterations per restart.
            kernel: ``"dense"``/``"sparse"``/``"jit"`` to force a
                field-update tier; None picks by model size and density
                with an effective read width of 1 -- the search flips
                one row at a time, so narrow-batch dense wins on
                mid-sized models when numba is absent.
            deadline: optional :class:`~repro.core.deadline.Deadline`;
                checked between restarts and every 64 iterations inside
                a search.  Expiry stops cleanly: interrupted restarts
                return their best-so-far state, unstarted restarts keep
                their random initial state, and
                ``info["deadline_interrupted"]`` is set.
        """
        order = list(model.variables)
        n = len(order)
        if n == 0:
            return SampleSet.empty([])
        if num_reads < 1:
            raise ValueError("num_reads must be positive")
        _, h_vec, indptr, indices, data = model.to_csr()
        # The search flips single rows, so the batch width is 1 no
        # matter how many restarts run.
        chosen = kernels.choose_kernel(n, len(indices), kernel, num_reads=1)
        if tenure is None:
            tenure = min(20, n // 4 + 1)

        start = time.perf_counter()
        # All restarts drawn and field-initialized in one batched pass;
        # the search below works on row views of these matrices.
        spins = self._rng.choice([-1.0, 1.0], size=(num_reads, n))
        fields = kernels.init_local_fields(h_vec, indptr, indices, data, spins)
        energies = kernels.batched_energies(h_vec, indptr, indices, data, spins)
        flip = kernels.make_flip_updater(chosen, indptr, indices, data)

        rows = np.empty((num_reads, n), dtype=np.int8)
        interrupted = False
        for read in range(num_reads):
            if deadline is not None and deadline.expired():
                # Unstarted restarts keep their random initial state.
                rows[read:] = spins[read:].astype(np.int8)
                interrupted = True
                break
            rows[read] = self._search(
                spins, fields, float(energies[read]), read, tenure, max_iter,
                flip, deadline,
            )
        elapsed = time.perf_counter() - start
        info = {
            "solver": "tabu",
            "kernel": chosen,
            "tenure": tenure,
            "num_reads": num_reads,
            "sampling_time_s": elapsed,
        }
        if interrupted or (deadline is not None and deadline.expired()):
            info["deadline_interrupted"] = True
        result = SampleSet.from_array(
            order,
            rows,
            model,
            info=info,
        )
        _observe_sample("tabu", result, elapsed, kernel=chosen,
                        num_reads=num_reads, tenure=tenure)
        return result

    def _search(
        self,
        spins: np.ndarray,
        fields: np.ndarray,
        energy: float,
        read: int,
        tenure: int,
        max_iter: int,
        flip: kernels.FlipUpdater,
        deadline=None,
    ) -> np.ndarray:
        n = spins.shape[1]
        row = np.array([read])
        s = spins[read]
        f = fields[read]
        best_spins = s.copy()
        best_energy = energy
        tabu_until = np.zeros(n, dtype=int)

        for it in range(max_iter):
            if (
                deadline is not None
                and it % 64 == 0
                and deadline.expired()
            ):
                break
            deltas = -2.0 * s * f
            allowed = tabu_until <= it
            # Aspiration: permit a tabu flip that would beat the best.
            aspiring = energy + deltas < best_energy - 1e-12
            candidates = allowed | aspiring
            if not candidates.any():
                candidates = np.ones(n, dtype=bool)
            masked = np.where(candidates, deltas, np.inf)
            i = int(np.argmin(masked))
            energy += float(deltas[i])
            flip(spins, fields, i, row)
            tabu_until[i] = it + 1 + int(self._rng.integers(0, tenure + 1))
            if energy < best_energy - 1e-12:
                best_energy = energy
                best_spins = s.copy()
        return best_spins.astype(np.int8)
