"""A D-Wave 2000Q front end over a classical annealing core.

The physical device the paper uses is unavailable here, so this module
provides the closest behavioural stand-in: it enforces everything the
real machine enforces (topology membership, coefficient ranges,
annealing-time limits), perturbs the programmed coefficients with the
machine's analog control noise ("ICE"), anneals with the simulated
annealer -- the classical algorithm quantum annealing implements in
hardware, per Section 2 -- and reports a QPU-style timing breakdown
(programming, anneal, readout, delay) calibrated to published 2000Q
figures so that per-solution timing experiments like Section 6.2 can be
reproduced in shape.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import networkx as nx
import numpy as np

from repro.core.faults import FaultInjector, FaultSpec
from repro.core.trace import observe_sample as _observe_sample
from repro.hardware.registry import make_topology
from repro.hardware.scaling import H_RANGE, J_RANGE, check_ranges
from repro.hardware.topology import coupler_dropout, dropout
from repro.ising.model import IsingModel
from repro.solvers.neal import SimulatedAnnealingSampler
from repro.solvers.sampleset import SampleSet


def _anneal_batch(job, deadline=None) -> Tuple[List, np.ndarray, str, bool]:
    """Anneal one gauge batch on a private sampler.

    Module-level so a :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle it; every stochastic input (the programmed model and the
    core seed) is baked into ``job`` by the parent, so the result does
    not depend on which process runs it or in what order.

    The job's sixth slot is a picklable
    :class:`~repro.core.deadline.Budget` (or None): monotonic-clock
    readings cannot cross a process boundary, so each worker re-arms
    the remaining budget on its own clock via ``budget.start()``.  A
    live ``deadline`` argument (serial path only) takes precedence.
    """
    programmed, batch_reads, num_sweeps, core_seed, kernel, budget = job
    if deadline is None and budget is not None:
        deadline = budget.start()
    core = SimulatedAnnealingSampler(seed=core_seed)
    raw = core.sample(
        programmed, num_reads=batch_reads, num_sweeps=num_sweeps, kernel=kernel,
        deadline=deadline,
    )
    interrupted = bool(raw.info.get("deadline_interrupted", False))
    return list(raw.variables), raw.records, raw.info.get("kernel", ""), interrupted


def _anneal_gauge_batch(jobs, deadline=None) -> List[Tuple[List, np.ndarray, str, bool]]:
    """Anneal every gauge batch in one packed kernel invocation.

    The jobs' programmed models, read counts, and seeds were all drawn
    by the parent exactly as for serial/pooled dispatch; the first job's
    core seed seeds the shared batch stream.  Every batch carries the
    same ``num_sweeps`` (one annealing time per call), and the shared
    deadline interrupts all batches at the same sweep.
    """
    from repro.solvers.batch import BatchedSweepJob

    _, _, num_sweeps, first_seed, kernel, budget = jobs[0]
    if deadline is None and budget is not None:
        deadline = budget.start()
    batch = BatchedSweepJob(seed=first_seed, kernel=kernel)
    for programmed, batch_reads, _sweeps, _seed, _kernel, _budget in jobs:
        batch.add(programmed, num_reads=batch_reads)
    results = []
    for raw in batch.run(num_sweeps=num_sweeps, deadline=deadline):
        results.append(
            (
                list(raw.variables),
                raw.records,
                raw.info.get("kernel", ""),
                bool(raw.info.get("deadline_interrupted", False)),
            )
        )
    return results


@dataclass
class MachineProperties:
    """Parameters of the simulated machine (Section 2 of the paper).

    ``topology`` names a family in :mod:`repro.hardware.registry`
    (``"chimera"``, ``"pegasus"``, ``"zephyr"``); ``cells`` is that
    family's size parameter (Chimera/Pegasus/Zephyr ``m`` -- a C16 is
    the paper's 2000Q), defaulting to the family's flagship chip
    (C16/P16/Z15), and ``tile`` its cell tile where the family has one
    (Chimera/Zephyr ``t``; ignored by Pegasus).
    """

    topology: str = "chimera"
    cells: Optional[int] = None
    tile: int = 4
    #: Fraction of qubits lost to fabrication drop-out.
    dropout_fraction: float = 0.02
    #: Fraction of couplers lost to fabrication drop-out (qubits stay).
    coupler_dropout_fraction: float = 0.0
    #: Explicitly dead qubits (indices absent from the graph are
    #: ignored), modeling a unit whose fault map is known exactly.
    dead_qubits: Tuple[int, ...] = ()
    #: Explicitly dead couplers, as (u, v) pairs.
    dead_couplers: Tuple[Tuple[int, int], ...] = ()
    h_range: tuple = H_RANGE
    j_range: tuple = J_RANGE
    #: User-specified annealing time must fall in 1-2000 us.
    min_annealing_time_us: float = 1.0
    max_annealing_time_us: float = 2000.0
    #: Gaussian control-noise sigmas applied to programmed coefficients.
    noise_h: float = 0.03
    noise_j: float = 0.02
    #: Timing model (published 2000Q figures, microseconds).
    programming_time_us: float = 10000.0
    readout_time_us: float = 123.0
    delay_time_us: float = 21.0
    #: How many Metropolis sweeps one microsecond of anneal buys the
    #: classical core.  Chosen so the default 20 us anneal gets a few
    #: hundred sweeps, enough to reach ground states of gate networks.
    sweeps_per_us: float = 16.0
    dropout_seed: int = 42


class DWaveSimulator:
    """Samples *physical* Hamiltonians the way a 2000Q would.

    The model handed to :meth:`sample_ising` must already be embedded:
    every variable a working qubit, every interaction a working coupler,
    every coefficient within range.  Violations raise, exactly as SAPI
    rejects such problems.

    The *working graph* is the yield model: the pristine topology graph
    (``properties.topology``, resolved through
    :mod:`repro.hardware.registry` -- Chimera by default) minus
    seeded-random qubit/coupler drop-out, minus any explicitly listed
    dead qubits and couplers, minus whatever an attached
    :class:`~repro.core.faults.FaultInjector` kills.  A ``faults``
    argument additionally arms transient failures: sample calls may
    raise :class:`~repro.core.faults.TransientSolverError` (failed
    programming cycles, timeouts) and reads may come back with flipped
    spins, exactly the degraded behavior a serving fleet must absorb.
    """

    def __init__(
        self,
        properties: Optional[MachineProperties] = None,
        seed: Optional[int] = None,
        faults: Optional[Union[FaultSpec, FaultInjector]] = None,
    ):
        self.properties = properties or MachineProperties()
        props = self.properties
        self.topology = make_topology(
            props.topology, size=props.cells, tile=props.tile
        )
        graph = self.topology.graph.copy()
        graph = dropout(
            graph, fraction=props.dropout_fraction, seed=props.dropout_seed
        )
        if props.coupler_dropout_fraction:
            graph = coupler_dropout(
                graph,
                fraction=props.coupler_dropout_fraction,
                seed=props.dropout_seed + 1,
            )
        if props.dead_qubits:
            graph.remove_nodes_from(
                [q for q in props.dead_qubits if q in graph]
            )
        if props.dead_couplers:
            graph.remove_edges_from(
                [(u, v) for u, v in props.dead_couplers if graph.has_edge(u, v)]
            )
        self.faults: Optional[FaultInjector] = (
            FaultInjector(faults) if isinstance(faults, FaultSpec) else faults
        )
        if self.faults is not None and self.faults.spec.has_yield_faults:
            graph = self.faults.degrade(graph, topology=self.topology)
        self.working_graph: nx.Graph = graph
        self._rng = np.random.default_rng(seed)

    @property
    def num_qubits(self) -> int:
        return self.working_graph.number_of_nodes()

    def validate_problem(self, model: IsingModel) -> None:
        """Reject problems that do not fit the working graph or ranges."""
        for v in model.variables:
            if v not in self.working_graph:
                raise ValueError(f"qubit {v!r} is not in the working graph")
        for (u, v), coupling in model.quadratic.items():
            if coupling != 0.0 and not self.working_graph.has_edge(u, v):
                raise ValueError(f"no coupler between qubits {u!r} and {v!r}")
        check_ranges(model, self.properties.h_range, self.properties.j_range)

    def sample_ising(
        self,
        model: IsingModel,
        num_reads: int = 100,
        annealing_time_us: float = 20.0,
        apply_noise: bool = True,
        num_spin_reversal_transforms: int = 0,
        kernel: Optional[str] = None,
        max_workers: Optional[int] = None,
        batch_gauges: bool = False,
        deadline=None,
    ) -> SampleSet:
        """Anneal an embedded problem ``num_reads`` times.

        Args:
            model: physical Hamiltonian over working-graph qubits.
            num_reads: anneal count; runs are stochastic so thousands of
                reads per run are normal (Section 5.4).
            annealing_time_us: per-anneal time, 1-2000 us.
            apply_noise: disable to get an idealized noise-free machine
                (useful in tests and ablations).
            num_spin_reversal_transforms: split the reads into this many
                batches, each run under a random gauge g in {-1,+1}^N
                (h -> g h, J_ij -> g_i g_j J_ij) and un-gauged on
                readout.  This is SAPI's spin-reversal-transform option:
                the problem is mathematically unchanged but systematic
                analog biases decorrelate across gauges.
            kernel: force the annealing core's sweep tier
                (``"dense"``/``"sparse"``/``"jit"``); None auto-selects.
            max_workers: run the gauge batches in a process pool of this
                size.  All randomness (gauges, analog noise, per-batch
                core seeds) is drawn from the simulator RNG *before*
                dispatch, so results are bit-identical to serial.
            batch_gauges: pack all gauge batches into one
                :class:`~repro.solvers.batch.BatchedSweepJob` kernel
                invocation instead of annealing them one (or one pool
                worker) at a time.  Gauges, noise, and seeds are still
                drawn pre-dispatch, so the *programmed* models are
                bit-identical to the serial path, but the packed anneal
                consumes one shared RNG stream -- results are
                deterministic given the simulator seed, not
                sample-identical to unbatched runs.  Takes precedence
                over ``max_workers`` when more than one gauge batch
                exists.
            deadline: optional :class:`~repro.core.deadline.Deadline`.
                The serial path hands the live deadline straight to the
                annealing core; the pooled path ships a picklable
                remaining-seconds :class:`~repro.core.deadline.Budget`
                in each job (workers re-arm it on their own monotonic
                clock).  Interrupted anneals return whatever sweeps
                completed and set ``info["deadline_interrupted"]``; the
                pool context always joins its workers, so expiry leaks
                no processes.

        Returns:
            A :class:`SampleSet` whose ``info["timing"]`` mirrors a QPU
            timing structure, with energies computed against the *clean*
            (noise-free) programmed Hamiltonian.
        """
        props = self.properties
        if not props.min_annealing_time_us <= annealing_time_us <= props.max_annealing_time_us:
            raise ValueError(
                f"annealing time {annealing_time_us} us outside "
                f"[{props.min_annealing_time_us}, {props.max_annealing_time_us}]"
            )
        if num_spin_reversal_transforms < 0:
            raise ValueError("num_spin_reversal_transforms must be >= 0")
        self.validate_problem(model)
        # Transient faults fire after validation, as on the real system:
        # SAPI rejects malformed problems client-side; programming and
        # sampling failures happen server-side on well-formed ones.
        if self.faults is not None:
            self.faults.before_sample()

        num_sweeps = max(8, int(annealing_time_us * props.sweeps_per_us))
        order = list(model.variables)
        start = time.perf_counter()

        batches = max(1, num_spin_reversal_transforms)
        reads_per_batch = [
            num_reads // batches + (1 if i < num_reads % batches else 0)
            for i in range(batches)
        ]
        # Every stochastic input -- gauge draws, analog control noise,
        # and each batch's annealing-core seed -- is consumed from the
        # simulator RNG serially *before* any sampling runs.  Batch
        # execution is therefore a pure function of its job tuple, and
        # dispatching the jobs to a process pool cannot change results.
        jobs = []
        gauges = []
        for batch_reads in reads_per_batch:
            if batch_reads == 0:
                continue
            if num_spin_reversal_transforms:
                gauge = self._rng.choice([-1.0, 1.0], size=len(order))
            else:
                gauge = np.ones(len(order))
            gauged = self._apply_gauge(model, order, gauge)
            programmed = (
                self._apply_control_noise(gauged) if apply_noise else gauged
            )
            core_seed = int(self._rng.integers(0, 2**63))
            budget = deadline.budget() if deadline is not None else None
            jobs.append(
                (programmed, batch_reads, num_sweeps, core_seed, kernel, budget)
            )
            gauges.append(gauge)

        if batch_gauges and len(jobs) > 1:
            results = _anneal_gauge_batch(jobs, deadline=deadline)
        elif max_workers is not None and max_workers > 1 and len(jobs) > 1:
            # The ``with`` context shuts the pool down and joins every
            # worker before returning -- a deadline expiry can shorten
            # the anneals but never leak processes.
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                results = list(pool.map(_anneal_batch, jobs))
        else:
            results = [_anneal_batch(job, deadline=deadline) for job in jobs]

        records = []
        kernel_used = ""
        any_interrupted = False
        for (variables, raw_records, kernel_used, interrupted), gauge in zip(
            results, gauges
        ):
            any_interrupted = any_interrupted or interrupted
            # Undo the gauge on readout (and restore variable order).
            positions = [variables.index(v) for v in order]
            rows = raw_records[:, positions].astype(float) * gauge[None, :]
            records.append(rows.astype(np.int8))

        all_records = np.vstack(records)
        reads_corrupted = 0
        if self.faults is not None:
            all_records, reads_corrupted = self.faults.corrupt_records(
                all_records
            )
        # Energies must be reported against the ideal problem, not the
        # noisy one the analog fabric actually realized.
        sampleset = SampleSet.from_array(order, all_records, model)
        anneal_total = num_reads * (
            annealing_time_us + props.readout_time_us + props.delay_time_us
        )
        sampleset.info = {
            "solver": "dwave-2000q-simulator",
            "topology": self.topology.fingerprint(),
            "timing": {
                "qpu_programming_time_us": props.programming_time_us,
                "qpu_anneal_time_per_sample_us": annealing_time_us,
                "qpu_readout_time_per_sample_us": props.readout_time_us,
                "qpu_delay_time_per_sample_us": props.delay_time_us,
                "qpu_sampling_time_us": anneal_total,
                "qpu_access_time_us": props.programming_time_us + anneal_total,
            },
            "num_sweeps": num_sweeps,
            "num_reads": num_reads,
            "kernel": kernel_used,
            "max_workers": max_workers,
            "noise_applied": apply_noise,
            "num_spin_reversal_transforms": num_spin_reversal_transforms,
        }
        if batch_gauges and len(jobs) > 1:
            sampleset.info["batched_gauges"] = True
        if any_interrupted:
            sampleset.info["deadline_interrupted"] = True
        if reads_corrupted:
            sampleset.info["injected_read_corruption"] = reads_corrupted
        _observe_sample("dwave", sampleset, time.perf_counter() - start,
                        kernel=kernel_used, num_reads=num_reads,
                        num_sweeps=num_sweeps,
                        annealing_time_us=annealing_time_us,
                        gauges=num_spin_reversal_transforms)
        return sampleset

    @staticmethod
    def _apply_gauge(model: IsingModel, order, gauge) -> IsingModel:
        """Apply a spin-reversal gauge: h_i g_i, J_ij g_i g_j."""
        index = {v: i for i, v in enumerate(order)}
        gauged = IsingModel(offset=model.offset)
        for v, bias in model.linear.items():
            gauged.add_variable(v, bias * gauge[index[v]])
        for (u, v), coupling in model.quadratic.items():
            gauged.add_interaction(
                u, v, coupling * gauge[index[u]] * gauge[index[v]]
            )
        return gauged

    def _apply_control_noise(self, model: IsingModel) -> IsingModel:
        """Perturb coefficients with the machine's analog imprecision."""
        props = self.properties
        noisy = IsingModel(offset=model.offset)
        for v, bias in model.linear.items():
            jitter = float(self._rng.normal(0.0, props.noise_h)) if bias != 0.0 else 0.0
            noisy.add_variable(
                v, float(np.clip(bias + jitter, *props.h_range))
            )
        for (u, v), coupling in model.quadratic.items():
            jitter = float(self._rng.normal(0.0, props.noise_j)) if coupling != 0.0 else 0.0
            noisy.add_interaction(
                u, v, float(np.clip(coupling + jitter, *props.j_range))
            )
        return noisy
