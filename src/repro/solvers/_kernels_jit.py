"""Numba-compiled sweep kernels: the ``jit`` tier of repro.solvers.kernels.

This module imports numba at import time and is therefore only ever
imported lazily, through ``kernels._load_jit()``.  Everything here is a
scalar-loop twin of a numpy expression in :mod:`repro.solvers.kernels`
or :mod:`repro.solvers.batch`, kept bit-identical by construction:

* all accept thresholds (log-uniforms) and sweep permutations are drawn
  and transformed by *numpy in the caller*, in the exact per-sweep order
  the numpy tier consumes them -- the compiled loops contain no RNG and
  no transcendentals, only compares, negations, and multiply-subtracts
  that mirror the numpy element ops in the same order;
* the incremental field update computes ``(2.0 * old) * data[p]`` with
  the same association as the numpy broadcast
  ``(2.0 * old)[:, None] * data[None, :]``.

``@njit(cache=True)`` persists the compiled machine code next to this
file, so the first-call compilation cost (~1 s) is paid once per
environment, not once per process.
"""

from __future__ import annotations

from numba import njit  # noqa: F401  (hard dependency of this module only)


@njit(cache=True)
def flip_rows(spins, fields, i, rows, indptr, indices, data):
    """Flip ``spins[rows, i]`` and update neighbor fields (CSR).

    Twin of the sparse tier's per-column flip updater.
    """
    for k in range(rows.shape[0]):
        r = rows[k]
        old = spins[r, i]
        spins[r, i] = -old
        two_old = 2.0 * old
        for p in range(indptr[i], indptr[i + 1]):
            fields[r, indices[p]] -= two_old * data[p]


@njit(cache=True)
def flip_mixed(spins, fields, rows, cols, indptr, indices, data):
    """Flip ``spins[rows[k], cols[k]]`` for each k (steepest-descent).

    Twin of the sparse tier's mixed flip updater.
    """
    for k in range(rows.shape[0]):
        r = rows[k]
        i = cols[k]
        old = spins[r, i]
        spins[r, i] = -old
        two_old = 2.0 * old
        for p in range(indptr[i], indptr[i + 1]):
            fields[r, indices[p]] -= two_old * data[p]


@njit(cache=True)
def metropolis_chunk(spins, fields, indptr, indices, data, perms, log_u, betas):
    """Run a chunk of Metropolis sweeps fused into one compiled loop.

    ``perms[c]`` is sweep c's proposal order, ``log_u[c, k, r]`` the
    pre-drawn accept threshold for proposal k of sweep c in read r, and
    ``betas[c]`` the sweep temperature.  Accept rule is the log-domain
    test shared with the numpy tiers: ``log(u) < min(2 beta s f, 0)``.
    Returns the number of accepted flips.
    """
    chunk = perms.shape[0]
    n = perms.shape[1]
    num_reads = spins.shape[0]
    accepted = 0
    for c in range(chunk):
        two_beta = 2.0 * betas[c]
        for k in range(n):
            i = perms[c, k]
            for r in range(num_reads):
                x = two_beta * spins[r, i] * fields[r, i]
                threshold = x if x < 0.0 else 0.0
                if log_u[c, k, r] < threshold:
                    old = spins[r, i]
                    spins[r, i] = -old
                    two_old = 2.0 * old
                    for p in range(indptr[i], indptr[i + 1]):
                        fields[r, indices[p]] -= two_old * data[p]
                    accepted += 1
    return accepted


@njit(cache=True)
def batched_metropolis_chunk(
    spins, fields, bindptr, bindices, bdata, prob_of_row, perms, log_u, betas
):
    """Fused sweep chunk over a *stacked* multi-problem batch.

    The stacked layout (see :class:`repro.solvers.batch.BatchedSweepJob`)
    concatenates every problem's reads along the row axis and pads all
    problems to a shared column count; ``bindices[p, bindptr[i]:
    bindptr[i+1]]``/``bdata[p, ...]`` hold problem p's (padded) neighbor
    slot for column i, with padding entries pointing at column i itself
    with coupling 0.0 (an exact no-op).  ``betas[c, p]`` is problem p's
    temperature in sweep c and ``prob_of_row[r]`` maps each read row to
    its problem.  Returns the number of accepted flips.
    """
    chunk = perms.shape[0]
    n = perms.shape[1]
    num_rows = spins.shape[0]
    accepted = 0
    for c in range(chunk):
        for k in range(n):
            i = perms[c, k]
            for r in range(num_rows):
                prob = prob_of_row[r]
                two_beta = 2.0 * betas[c, prob]
                x = two_beta * spins[r, i] * fields[r, i]
                threshold = x if x < 0.0 else 0.0
                if log_u[c, k, r] < threshold:
                    old = spins[r, i]
                    spins[r, i] = -old
                    two_old = 2.0 * old
                    for p in range(bindptr[i], bindptr[i + 1]):
                        fields[r, bindices[prob, p]] -= two_old * bdata[prob, p]
                    accepted += 1
    return accepted
