"""Samplers and solvers that minimize quadratic pseudo-Boolean functions.

The paper runs its compiled Hamiltonians on a D-Wave 2000Q.  Per the
paper's own Section 2 ("the generated H(sigma) can be minimized in
software on conventional computers using, e.g., simulated annealing"),
this package provides the classical stand-ins:

- :mod:`repro.solvers.exact` -- exhaustive enumeration (ground truth for
  tests and small problems).
- :mod:`repro.solvers.neal` -- a vectorized simulated-annealing sampler,
  the equivalent of D-Wave's ``dwave-neal``.
- :mod:`repro.solvers.tabu` -- tabu search, the core of qbsolv.
- :mod:`repro.solvers.qbsolv` -- qbsolv-style decomposition for problems
  larger than the hardware graph.
- :mod:`repro.solvers.machine` -- a D-Wave 2000Q front end: enforces the
  hardware topology and coefficient ranges, models analog control noise
  and the machine's timing, and delegates the physics to annealing.
- :mod:`repro.solvers.csp` -- a constraint-propagation + backtracking
  solver standing in for MiniZinc/Chuffed (the Section 6.2 baseline).
- :mod:`repro.solvers.kernels` -- the shared dense/sparse sweep
  primitives every software annealer above runs on (bit-identical
  backends, automatic density crossover).
"""

from repro.solvers.sampleset import Sample, SampleSet
from repro.solvers.exact import ExactSolver
from repro.solvers.neal import SimulatedAnnealingSampler
from repro.solvers.sqa import PathIntegralAnnealer
from repro.solvers.greedy import SteepestDescentSolver
from repro.solvers.tabu import TabuSampler
from repro.solvers.qbsolv import QBSolv
from repro.solvers.machine import DWaveSimulator, MachineProperties
from repro.solvers.csp import CSPModel, CSPSolver

__all__ = [
    "Sample",
    "SampleSet",
    "ExactSolver",
    "SimulatedAnnealingSampler",
    "PathIntegralAnnealer",
    "SteepestDescentSolver",
    "TabuSampler",
    "QBSolv",
    "DWaveSimulator",
    "MachineProperties",
    "CSPModel",
    "CSPSolver",
]
