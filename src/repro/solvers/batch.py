"""Cross-problem sweep batching: many independent anneals, one kernel.

Fleet dispatch (``repro.solvers.shard``), gauge replicas
(``DWaveSimulator``), and service-style traffic all produce streams of
*small, independent* Ising problems.  Annealing them one at a time pays
the per-problem Python overhead -- schedule setup, per-proposal numpy
dispatch on a handful of rows -- over and over, which is exactly the
cost the sparse kernel rewrite couldn't remove.  This module packs K
independent problems into **one** sweep-kernel invocation.

The packing is *stacked*, not block-diagonal over variables.  A
block-diagonal layout (one (sum n_k)-column matrix) would keep the
proposal count unchanged -- no numpy win at all.  Instead:

* rows = every problem's reads concatenated problem-major
  (``prob_of_row[r]`` maps a row back to its problem);
* columns = ``max_k n_k`` -- problems are padded to a shared width, so
  one proposal at column i advances *all* K problems at once across
  all their reads;
* the CSR neighbor lists are stacked per column: slot
  ``bindptr[i]:bindptr[i+1]`` is sized for the worst problem's degree
  at column i, and problem p's row of ``bindices``/``bdata`` fills it
  with p's real neighbors followed by padding entries that point at
  column i itself with coupling 0.0 -- an exact no-op, the same trick
  that makes the dense tier bit-identical to the sparse tier;
* per-problem temperatures live in a ``betas[sweep, p]`` matrix, so
  heterogeneous coefficient scales keep their own neal-style schedule.

A sweep of the packed matrix therefore costs K problems' progress for
one Python/numpy proposal loop (or one compiled call on the ``jit``
tier), and ragged read counts / variable counts are handled naturally.
Throughput: >= 2x over sequential dispatch for 8 small problems in pure
numpy (see ``benchmarks/test_kernel_perf.py``), more with numba.

The batch is a *different RNG-consumption pattern* than K sequential
anneals (one shared stream drives the packed matrix), so batched runs
are deterministic given the job seed but not sample-identical to
sequential runs; callers opt in (``batch_gauges=True`` on the machine,
``batch_rounds=True`` on the shard solver).
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.core import trace as _trace
from repro.ising.model import IsingModel
from repro.solvers import kernels
from repro.solvers.neal import default_beta_range
from repro.solvers.sampleset import SampleSet


class BatchedSweepJob:
    """Pack independent Ising problems into one Metropolis invocation.

    Usage::

        job = BatchedSweepJob(seed=7)
        for model in models:
            job.add(model, num_reads=50)
        samplesets = job.run(num_sweeps=256)   # one per added model

    ``run`` may be called repeatedly; each call re-anneals every problem
    from fresh random states drawn from the job's RNG stream.
    """

    def __init__(self, seed: Optional[int] = None, kernel: Optional[str] = None):
        """Args:
            seed: seed for the job's single shared RNG stream.
            kernel: ``"jit"`` / ``"sparse"`` / None (auto: jit when
                numba is available).  The stacked layout has no dense
                tier -- ``"dense"`` is accepted and mapped to the
                stacked numpy path, and ``"jit"`` without numba warns
                once and runs the numpy path.
        """
        if kernel is not None and kernel not in kernels.KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {kernels.KERNELS}"
            )
        self._rng = np.random.default_rng(seed)
        self.kernel = kernel
        self._problems: List[Tuple[IsingModel, int, Optional[Tuple[float, float]]]] = []

    def add(
        self,
        model: IsingModel,
        num_reads: int = 25,
        beta_range: Optional[Tuple[float, float]] = None,
    ) -> int:
        """Queue a problem; returns its index into ``run()``'s result list.

        Args:
            model: the Ising model to anneal.
            num_reads: independent reads for *this* problem (ragged
                counts across the batch are fine).
            beta_range: optional (hot, cold) override; defaults to the
                neal heuristic on this problem's coefficients.
        """
        if num_reads < 1:
            raise ValueError("num_reads must be positive")
        if beta_range is not None:
            beta_hot, beta_cold = beta_range
            if beta_hot <= 0 or beta_cold < beta_hot:
                raise ValueError(f"invalid beta range {beta_range!r}")
        self._problems.append((model, int(num_reads), beta_range))
        return len(self._problems) - 1

    def __len__(self) -> int:
        return len(self._problems)

    def _resolve_tier(self) -> str:
        """``jit`` when runnable, else the stacked numpy path (``sparse``)."""
        if self.kernel == kernels.JIT or self.kernel is None:
            if kernels.jit_available():
                return kernels.JIT
            if self.kernel == kernels.JIT:
                kernels._warn_jit_fallback()
        return kernels.SPARSE

    def run(self, num_sweeps: int = 1000, deadline=None) -> List[SampleSet]:
        """Anneal every queued problem; one energy-sorted SampleSet each.

        Args:
            num_sweeps: Metropolis sweeps (shared by all problems --
                they anneal in lockstep; temperatures stay per-problem).
            deadline: optional :class:`~repro.core.deadline.Deadline`,
                polled every :data:`~repro.solvers.kernels.DEADLINE_SWEEP_BATCH`
                sweeps for the whole batch at once.  Expiry stops all
                problems at the same completed sweep and sets
                ``info["deadline_interrupted"]`` on every result.
        """
        if not self._problems:
            return []
        tier = self._resolve_tier()

        csrs = [model.to_csr() for model, _, _ in self._problems]
        sizes = [len(order) for (order, _, _, _, _) in csrs]
        reads = [num_reads for _, num_reads, _ in self._problems]
        max_n = max(sizes)
        if max_n == 0:
            return [SampleSet.empty([]) for _ in self._problems]
        num_problems = len(self._problems)
        total_rows = sum(reads)
        row_starts = np.concatenate(([0], np.cumsum(reads)))
        prob_of_row = np.repeat(np.arange(num_problems, dtype=np.int64), reads)

        # --- stacked adjacency -----------------------------------------
        degrees = np.zeros((num_problems, max_n), dtype=np.int64)
        for p, (_, _, indptr, _, _) in enumerate(csrs):
            degrees[p, : sizes[p]] = np.diff(indptr)
        slot_width = degrees.max(axis=0)
        bindptr = np.zeros(max_n + 1, dtype=np.int64)
        np.cumsum(slot_width, out=bindptr[1:])
        width = int(bindptr[-1])
        # Padding points each unused slot entry back at its own column
        # with coupling 0.0: `fields[r, i] -= two_old * 0.0` is an exact
        # no-op, so short neighbor lists cost nothing but the touch.
        bindices = np.broadcast_to(
            np.repeat(np.arange(max_n, dtype=np.int64), slot_width),
            (num_problems, width),
        ).copy()
        bdata = np.zeros((num_problems, width), dtype=float)
        for p, (_, _, indptr, indices, data) in enumerate(csrs):
            for i in range(sizes[p]):
                start, end = indptr[i], indptr[i + 1]
                if start != end:
                    offset = bindptr[i]
                    bindices[p, offset : offset + end - start] = indices[start:end]
                    bdata[p, offset : offset + end - start] = data[start:end]

        # --- per-problem beta schedules --------------------------------
        betas = np.empty((num_sweeps, num_problems), dtype=float)
        beta_ranges = []
        for p, (model, _, beta_range) in enumerate(self._problems):
            if beta_range is None:
                beta_range = default_beta_range(model)
            beta_hot, beta_cold = beta_range
            beta_ranges.append((float(beta_hot), float(beta_cold)))
            betas[:, p] = np.geomspace(beta_hot, beta_cold, num_sweeps)

        # --- initial state ---------------------------------------------
        start_time = time.perf_counter()
        spins = self._rng.choice([-1.0, 1.0], size=(total_rows, max_n))
        # Fields start exact per problem; padding columns have h = 0 and
        # no neighbors, so their field is identically 0 and proposals
        # there are pure coin flips that never touch real state.
        fields = np.zeros((total_rows, max_n), dtype=float)
        for p, (order, h_vec, indptr, indices, data) in enumerate(csrs):
            r0, r1 = row_starts[p], row_starts[p + 1]
            n_p = sizes[p]
            if n_p:
                fields[r0:r1, :n_p] = kernels.init_local_fields(
                    h_vec, indptr, indices, data, spins[r0:r1, :n_p]
                )

        # --- the packed anneal -----------------------------------------
        if tier == kernels.JIT:
            accepted, completed = self._run_jit(
                spins, fields, bindptr, bindices, bdata, prob_of_row,
                betas, deadline,
            )
        else:
            accepted, completed = self._run_numpy(
                spins, fields, bindptr, bindices, bdata, prob_of_row,
                betas, deadline,
            )
        elapsed = time.perf_counter() - start_time

        # --- unpack ----------------------------------------------------
        results: List[SampleSet] = []
        sweep_rate = num_sweeps / elapsed if elapsed > 0 else 0.0
        for p, (model, num_reads, _) in enumerate(self._problems):
            order = csrs[p][0]
            if not sizes[p]:
                results.append(SampleSet.empty([]))
                continue
            r0, r1 = row_starts[p], row_starts[p + 1]
            info = {
                "solver": "batched-sa",
                "kernel": tier,
                "num_reads": num_reads,
                "num_sweeps": num_sweeps,
                "beta_range": beta_ranges[p],
                "batch_size": num_problems,
                "batch_index": p,
                "sampling_time_s": elapsed,
                "sweeps_per_s": sweep_rate,
                "batch_accepted_flips": int(accepted),
            }
            if completed < num_sweeps:
                info["deadline_interrupted"] = True
                info["num_sweeps_completed"] = int(completed)
            results.append(
                SampleSet.from_array(
                    list(order),
                    spins[r0:r1, : sizes[p]].astype(np.int8),
                    model,
                    info=info,
                )
            )

        if _trace.enabled():
            _trace.record(
                "solver.batch.sweep",
                duration_s=elapsed,
                problems=num_problems,
                rows=total_rows,
                variables=max_n,
                kernel=tier,
                num_sweeps=num_sweeps,
            )
            registry = _trace.metrics()
            registry.counter("solver.batch.jobs").inc()
            registry.counter("solver.batch.problems").inc(num_problems)
            registry.counter(f"solver.kernel.{tier}").inc()
            if sweep_rate:
                registry.gauge(f"kernel.{tier}.sweeps_per_s").set(sweep_rate)
        return results

    def _run_numpy(
        self, spins, fields, bindptr, bindices, bdata, prob_of_row,
        betas, deadline,
    ) -> Tuple[int, int]:
        """Stacked numpy sweeps; one vector op per proposal, all problems."""
        num_sweeps, _ = betas.shape
        total_rows, n = spins.shape
        accepted = 0
        completed = 0
        for sweep in range(num_sweeps):
            if (
                deadline is not None
                and sweep % kernels.DEADLINE_SWEEP_BATCH == 0
                and deadline.expired()
            ):
                break
            variables = self._rng.permutation(n)
            log_u = kernels.log_uniforms(self._rng, (n, total_rows))
            two_beta = 2.0 * betas[sweep, prob_of_row]
            for k in range(n):
                i = variables[k]
                x = two_beta * spins[:, i] * fields[:, i]
                rows = np.nonzero(log_u[k] < np.minimum(x, 0.0))[0]
                if len(rows):
                    old = spins[rows, i]
                    spins[rows, i] = -old
                    start, end = bindptr[i], bindptr[i + 1]
                    if start != end:
                        probs = prob_of_row[rows]
                        # Padding slots target column i with 0.0 data, so
                        # the buffered fancy-index subtract is exact even
                        # when a row's slot repeats the same column.
                        fields[rows[:, None], bindices[probs, start:end]] -= (
                            (2.0 * old)[:, None] * bdata[probs, start:end]
                        )
                    accepted += len(rows)
            completed += 1
        return accepted, completed

    def _run_jit(
        self, spins, fields, bindptr, bindices, bdata, prob_of_row,
        betas, deadline,
    ) -> Tuple[int, int]:
        """Compiled twin of :meth:`_run_numpy`, chunked like the jit tier.

        Chunks never cross a DEADLINE_SWEEP_BATCH boundary, so deadline
        polls land at the same sweep indices as the numpy path, and the
        RNG stream (permutation + log-uniform block per sweep) is
        consumed in the identical order -- the two paths are
        sample-for-sample identical for the same job seed.
        """
        jit_mod = kernels._load_jit()
        num_sweeps = betas.shape[0]
        total_rows, n = spins.shape
        max_chunk = max(
            1,
            min(
                kernels.DEADLINE_SWEEP_BATCH,
                kernels.JIT_CHUNK_ELEMENTS // max(1, n * total_rows),
            ),
        )
        accepted = 0
        sweep = 0
        while sweep < num_sweeps:
            if (
                deadline is not None
                and sweep % kernels.DEADLINE_SWEEP_BATCH == 0
                and deadline.expired()
            ):
                break
            window_end = min(
                num_sweeps,
                sweep
                + kernels.DEADLINE_SWEEP_BATCH
                - (sweep % kernels.DEADLINE_SWEEP_BATCH),
            )
            chunk = min(max_chunk, window_end - sweep)
            perms = np.empty((chunk, n), dtype=np.int64)
            log_u = np.empty((chunk, n, total_rows), dtype=float)
            for c in range(chunk):
                perms[c] = self._rng.permutation(n)
                kernels.log_uniforms(self._rng, (n, total_rows), out=log_u[c])
            accepted += int(
                jit_mod.batched_metropolis_chunk(
                    spins, fields, bindptr, bindices, bdata, prob_of_row,
                    perms, log_u,
                    np.ascontiguousarray(betas[sweep : sweep + chunk]),
                )
            )
            sweep += chunk
        return accepted, sweep


def sample_batched(
    models,
    num_reads: int = 25,
    num_sweeps: int = 1000,
    seed: Optional[int] = None,
    kernel: Optional[str] = None,
    deadline=None,
) -> List[SampleSet]:
    """One-shot convenience: anneal a list of models in one packed job."""
    job = BatchedSweepJob(seed=seed, kernel=kernel)
    for model in models:
        job.add(model, num_reads=num_reads)
    return job.run(num_sweeps=num_sweeps, deadline=deadline)
