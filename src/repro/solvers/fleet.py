"""Fleet resilience: machine health, circuit breakers, re-dispatch.

The sharded decomposer (:mod:`repro.solvers.shard`) dispatches
chip-sized subproblems across a fleet of simulated annealers.  Real
annealer fleets lose whole machines mid-run -- Zick et al. (arxiv
1503.06453) document per-device calibration drift and outages -- so a
fleet that cannot survive machine loss is not a fleet, just N single
points of failure.  This module is the resilience layer the shard
dispatcher leans on:

* :class:`MachineHealth` -- rolling per-machine statistics: dispatch
  outcomes, modeled QPU latency, chain-break fractions, wall time.
  *Decisions* are made on the modeled latency (the deterministic QPU
  timing model every shard result carries), never on wall-clock
  readings, so health verdicts -- and therefore dispatch -- are
  bit-identical across reruns.
* :class:`CircuitBreaker` -- the classic closed / open / half-open
  state machine, with the cooldown measured in *dispatch rounds* (not
  seconds, for the same determinism reason).  A machine whose
  transient-failure rate, corruption rate, or relative latency crosses
  the :class:`HealthPolicy` thresholds is quarantined; after the
  cooldown it gets exactly one probe shard, and either recovers or
  re-opens.  Crashes open the breaker permanently.
* :class:`MachineFaultPlan` -- the deterministic interpreter of the
  fleet-level :class:`~repro.core.faults.FaultSpec` fields
  (``machine_crashes`` / ``machine_stragglers`` / ``machine_flaky``):
  every injected crash, slow-down, and flaky failure is a pure function
  of the spec seed and the per-machine dispatch counter.
* :class:`Fleet` -- the machines plus the plan, with
  :func:`parse_fleet_spec` building heterogeneous fleets from compact
  CLI text (``"C16,P8,Z6"`` -- one Chimera-16, one Pegasus-8, one
  Zephyr-6 machine).

Observability: quarantine and recovery are ``fleet.quarantine`` /
``fleet.recovery`` instant events, re-dispatches are
``fleet.redispatch`` events plus a ``fleet.redispatches`` counter, and
each machine exports ``fleet.machine.<i>.state`` (0 closed, 1
half-open, 2 open) through the ambient metrics registry.

Everything here is plain picklable state with explicit
``state_dict()`` / ``load_state()`` round-trips, so the shard solver
can checkpoint fleet state through the crash-safe cache tier and a
``--resume`` continues with the same breakers open, the same dispatch
counters, and the same flaky-RNG streams -- bit-identical to the run
that was killed.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core import trace as _trace
from repro.core.cache import options_fingerprint
from repro.core.faults import (
    FaultSpec,
    MachineCrashError,
    TransientSolverError,
)
from repro.solvers.machine import MachineProperties

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "HealthPolicy",
    "MachineHealth",
    "CircuitBreaker",
    "MachineFaultPlan",
    "FleetMachine",
    "Fleet",
    "parse_fleet_spec",
    "make_fleet",
    "modeled_latency_us",
]

#: Circuit-breaker states (strings so they serialize trivially).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"
#: Gauge encoding for ``fleet.machine.<i>.state``.
_STATE_CODE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds for quarantining and recovering fleet machines.

    Attributes:
        window: rolling-window length (dispatch outcomes) per machine.
        min_samples: never judge a machine on fewer outcomes than this.
        failure_threshold: open the breaker when the windowed
            transient-failure rate reaches this fraction.
        corruption_threshold: open the breaker when the windowed mean
            chain-break fraction of the machine's results reaches this.
        straggler_factor: open the breaker when the machine's mean
            modeled latency exceeds this multiple of the fleet median.
        cooldown_rounds: dispatch rounds a non-permanent open breaker
            waits before half-opening for a single probe shard.
    """

    window: int = 16
    min_samples: int = 4
    failure_threshold: float = 0.5
    corruption_threshold: float = 0.5
    straggler_factor: float = 4.0
    cooldown_rounds: int = 2

    def __post_init__(self):
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        for name in ("failure_threshold", "corruption_threshold"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value!r}")
        if self.straggler_factor <= 1.0:
            raise ValueError("straggler_factor must be > 1")
        if self.cooldown_rounds < 1:
            raise ValueError("cooldown_rounds must be >= 1")


def modeled_latency_us(
    properties: MachineProperties, reads: int, annealing_time_us: float
) -> float:
    """Deterministic per-dispatch QPU latency from the timing model.

    Programming plus per-read anneal/readout/delay -- the same figures
    :meth:`~repro.solvers.machine.DWaveSimulator.sample_ising` reports
    in ``info["timing"]``.  Health decisions key on this, not on
    wall-clock measurements, so quarantine verdicts are reproducible.
    """
    return properties.programming_time_us + reads * (
        annealing_time_us
        + properties.readout_time_us
        + properties.delay_time_us
    )


class MachineHealth:
    """Rolling success/latency/chain-break statistics for one machine.

    Attributes:
        dispatches: total dispatch attempts (including failed ones).
        successes / failures / crashes: lifetime outcome counters.
        wall_time_s: total wall-clock seconds spent in shard workers --
            observability only, never a decision input.
    """

    def __init__(self, window: int = 16):
        self.window = window
        self._outcomes: deque = deque(maxlen=window)
        self._latencies_us: deque = deque(maxlen=window)
        self._chain_breaks: deque = deque(maxlen=window)
        self.dispatches = 0
        self.successes = 0
        self.failures = 0
        self.crashes = 0
        self.wall_time_s = 0.0

    # ------------------------------------------------------------------
    def record_success(
        self,
        modeled_us: float,
        wall_s: float = 0.0,
        chain_break_fraction: float = 0.0,
    ) -> None:
        self.successes += 1
        self.wall_time_s += wall_s
        self._outcomes.append(1.0)
        self._latencies_us.append(float(modeled_us))
        self._chain_breaks.append(float(chain_break_fraction))

    def record_failure(self, kind: str = "transient") -> None:
        self.failures += 1
        if kind == "crash":
            self.crashes += 1
        self._outcomes.append(0.0)

    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        """Outcomes currently inside the rolling window."""
        return len(self._outcomes)

    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return 1.0 - sum(self._outcomes) / len(self._outcomes)

    def mean_latency_us(self) -> float:
        if not self._latencies_us:
            return 0.0
        return sum(self._latencies_us) / len(self._latencies_us)

    def mean_chain_breaks(self) -> float:
        if not self._chain_breaks:
            return 0.0
        return sum(self._chain_breaks) / len(self._chain_breaks)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict view for ``info["fleet"]`` and dashboards."""
        return {
            "dispatches": self.dispatches,
            "successes": self.successes,
            "failures": self.failures,
            "crashes": self.crashes,
            "failure_rate": round(self.failure_rate(), 4),
            "mean_latency_us": round(self.mean_latency_us(), 2),
            "mean_chain_breaks": round(self.mean_chain_breaks(), 4),
            "wall_time_s": round(self.wall_time_s, 4),
        }

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        return {
            "window": self.window,
            "outcomes": list(self._outcomes),
            "latencies_us": list(self._latencies_us),
            "chain_breaks": list(self._chain_breaks),
            "dispatches": self.dispatches,
            "successes": self.successes,
            "failures": self.failures,
            "crashes": self.crashes,
            "wall_time_s": self.wall_time_s,
        }

    def load_state(self, state: Dict) -> None:
        self.window = int(state["window"])
        self._outcomes = deque(state["outcomes"], maxlen=self.window)
        self._latencies_us = deque(state["latencies_us"], maxlen=self.window)
        self._chain_breaks = deque(state["chain_breaks"], maxlen=self.window)
        self.dispatches = int(state["dispatches"])
        self.successes = int(state["successes"])
        self.failures = int(state["failures"])
        self.crashes = int(state["crashes"])
        self.wall_time_s = float(state["wall_time_s"])


class CircuitBreaker:
    """Closed / open / half-open quarantine gate for one machine.

    The cooldown is counted in dispatch *rounds* so state transitions
    are a pure function of the dispatch history -- a wall-clock cooldown
    would make recovery timing (and with it shard placement on
    heterogeneous fleets) irreproducible.

    Attributes:
        state: one of :data:`CLOSED`, :data:`OPEN`, :data:`HALF_OPEN`.
        permanent: True after a crash -- the breaker never half-opens.
        reason: why the breaker last opened (``"crash"``,
            ``"failure_rate"``, ``"corruption"``, ``"straggler"``).
        opens: lifetime count of open transitions.
    """

    def __init__(self, policy: Optional[HealthPolicy] = None):
        self.policy = policy or HealthPolicy()
        self.state = CLOSED
        self.permanent = False
        self.reason: Optional[str] = None
        self.opened_round = -1
        self.opens = 0

    # ------------------------------------------------------------------
    def trip(
        self, round_index: int, reason: str, permanent: bool = False
    ) -> None:
        """Open the breaker (idempotent for an already-open breaker)."""
        if self.state == OPEN and (self.permanent or not permanent):
            self.permanent = self.permanent or permanent
            return
        self.state = OPEN
        self.permanent = self.permanent or permanent
        self.reason = reason
        self.opened_round = round_index
        self.opens += 1

    def admit(self, round_index: int) -> bool:
        """May this machine receive work in ``round_index``?

        An open breaker past its cooldown transitions to half-open and
        admits (the dispatcher limits a half-open machine to a single
        probe shard per round).
        """
        if self.state == CLOSED:
            return True
        if self.state == HALF_OPEN:
            return True
        if self.permanent:
            return False
        if round_index - self.opened_round >= self.policy.cooldown_rounds:
            self.state = HALF_OPEN
            return True
        return False

    def record(self, success: bool, round_index: int) -> Optional[str]:
        """Feed a probe outcome; returns ``"recovered"`` on recovery."""
        if self.state != HALF_OPEN:
            return None
        if success:
            self.state = CLOSED
            self.reason = None
            return "recovered"
        self.trip(round_index, reason=self.reason or "probe_failure")
        return None

    @property
    def code(self) -> int:
        return _STATE_CODE[self.state]

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        return {
            "state": self.state,
            "permanent": self.permanent,
            "reason": self.reason,
            "opened_round": self.opened_round,
            "opens": self.opens,
        }

    def load_state(self, state: Dict) -> None:
        self.state = state["state"]
        self.permanent = bool(state["permanent"])
        self.reason = state["reason"]
        self.opened_round = int(state["opened_round"])
        self.opens = int(state["opens"])


class MachineFaultPlan:
    """Deterministic fleet-level fault schedule from a :class:`FaultSpec`.

    Consulted by the dispatcher *before* a shard job ships: the plan
    decides, as a pure function of (spec seed, machine index, dispatch
    number), whether this dispatch crashes the machine, fails
    transiently, or runs slowed.  Evaluating faults parent-side keeps
    the chaos schedule independent of pool scheduling, which is what
    makes chaos runs replayable.
    """

    def __init__(self, spec: Optional[FaultSpec] = None):
        self.spec = spec
        self.crash_at: Dict[int, int] = {}
        self.straggle: Dict[int, float] = {}
        self.flaky: Dict[int, float] = {}
        self._flaky_rngs: Dict[int, np.random.Generator] = {}
        self.crashes_fired = 0
        self.flaky_failures = 0
        if spec is not None:
            self.crash_at = {m: at for m, at in spec.machine_crashes}
            self.straggle = {m: f for m, f in spec.machine_stragglers}
            self.flaky = {m: r for m, r in spec.machine_flaky}
            self._flaky_rngs = {
                m: np.random.default_rng(spec.seed * 1000003 + m + 1)
                for m in self.flaky
            }

    # ------------------------------------------------------------------
    def check_dispatch(self, machine: int, dispatch: int) -> float:
        """Evaluate the plan for one dispatch; returns the slow factor.

        Args:
            machine: fleet machine index.
            dispatch: 1-based dispatch number on that machine.

        Raises:
            MachineCrashError: the machine is (now) dead.
            TransientSolverError: this dispatch fails flakily.
        """
        crash_at = self.crash_at.get(machine)
        if crash_at is not None and dispatch >= crash_at:
            self.crashes_fired += 1
            raise MachineCrashError(
                f"injected crash of fleet machine {machine} on dispatch "
                f"{dispatch} (scheduled at {crash_at})",
                machine=machine,
                dispatch=dispatch,
            )
        rate = self.flaky.get(machine, 0.0)
        if rate and self._flaky_rngs[machine].random() < rate:
            self.flaky_failures += 1
            raise TransientSolverError(
                f"injected flaky failure of fleet machine {machine} on "
                f"dispatch {dispatch}",
                kind="machine_flaky",
            )
        return self.straggle.get(machine, 1.0)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        return {
            "crashes_fired": self.crashes_fired,
            "flaky_failures": self.flaky_failures,
            "flaky_rngs": {
                m: rng.bit_generator.state
                for m, rng in self._flaky_rngs.items()
            },
        }

    def load_state(self, state: Dict) -> None:
        self.crashes_fired = int(state["crashes_fired"])
        self.flaky_failures = int(state["flaky_failures"])
        for m, rng_state in state["flaky_rngs"].items():
            m = int(m)
            if m in self._flaky_rngs:
                self._flaky_rngs[m].bit_generator.state = rng_state


class FleetMachine:
    """One fleet member: properties plus health plus breaker.

    Attributes:
        index: position in the fleet (stable for the whole run; fault
            specs and metrics name machines by it).
        label: human-readable ``"m<i>:<topology><size>"``.
        properties: this machine's :class:`MachineProperties` --
            heterogeneous fleets mix topologies and sizes here.
        class_key: fingerprint of ``properties``; machines sharing it
            are interchangeable (same working graph), so embeddings are
            reused across them.
    """

    def __init__(
        self,
        index: int,
        properties: MachineProperties,
        policy: Optional[HealthPolicy] = None,
    ):
        policy = policy or HealthPolicy()
        self.index = index
        self.properties = properties
        self.health = MachineHealth(window=policy.window)
        self.breaker = CircuitBreaker(policy)
        size = "" if properties.cells is None else str(properties.cells)
        self.label = f"m{index}:{properties.topology}{size}"
        self.class_key = options_fingerprint(properties)

    def __repr__(self) -> str:
        return f"FleetMachine({self.label}, {self.breaker.state})"


class Fleet:
    """The machines, their fault plan, and the quarantine bookkeeping.

    Args:
        machines: per-machine properties (one entry per fleet member);
            a homogeneous fleet passes the same properties N times.
        policy: health/breaker thresholds (shared by all machines).
        faults: the :class:`FaultSpec` whose machine-level fields drive
            the injected chaos; ``None`` runs a healthy fleet.

    The fleet never dispatches by itself -- the shard solver asks
    :meth:`begin_round` / :meth:`admitted`, feeds outcomes back through
    :meth:`record_success` / :meth:`record_failure`, and lets
    :meth:`check_quarantines` apply the policy after each round.
    """

    def __init__(
        self,
        machines: Sequence[MachineProperties],
        policy: Optional[HealthPolicy] = None,
        faults: Optional[FaultSpec] = None,
    ):
        if not machines:
            raise ValueError("a fleet needs at least one machine")
        self.policy = policy or HealthPolicy()
        self.machines: List[FleetMachine] = [
            FleetMachine(i, props, self.policy)
            for i, props in enumerate(machines)
        ]
        self.plan = MachineFaultPlan(faults)
        self.round = 0
        self.redispatches = 0
        self.fallbacks = 0

    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        properties: MachineProperties,
        count: int,
        policy: Optional[HealthPolicy] = None,
        faults: Optional[FaultSpec] = None,
    ) -> "Fleet":
        if count < 1:
            raise ValueError("machines must be >= 1")
        return cls([properties] * count, policy=policy, faults=faults)

    @classmethod
    def from_spec(
        cls,
        spec: str,
        template: Optional[MachineProperties] = None,
        policy: Optional[HealthPolicy] = None,
        faults: Optional[FaultSpec] = None,
    ) -> "Fleet":
        """Build a (possibly heterogeneous) fleet from ``"C16,P8,Z6"``."""
        return cls(
            parse_fleet_spec(spec, template=template),
            policy=policy,
            faults=faults,
        )

    def __len__(self) -> int:
        return len(self.machines)

    def __iter__(self):
        return iter(self.machines)

    # ------------------------------------------------------------------
    def begin_round(self) -> int:
        """Advance the fleet's dispatch-round counter."""
        self.round += 1
        return self.round

    def admitted(self) -> List[FleetMachine]:
        """Machines whose breakers admit work this round, fleet order."""
        return [m for m in self.machines if m.breaker.admit(self.round)]

    def labels(self) -> List[str]:
        return [m.label for m in self.machines]

    def quarantined(self) -> List[str]:
        return [m.label for m in self.machines if m.breaker.state == OPEN]

    def crashed(self) -> List[str]:
        return [m.label for m in self.machines if m.breaker.permanent]

    # ------------------------------------------------------------------
    def record_success(
        self,
        machine: FleetMachine,
        modeled_us: float,
        wall_s: float,
        chain_break_fraction: float,
    ) -> None:
        """Record a completed shard and let a half-open probe recover."""
        machine.health.record_success(
            modeled_us,
            wall_s=wall_s,
            chain_break_fraction=chain_break_fraction,
        )
        if machine.breaker.record(True, self.round) == "recovered":
            _trace.event(
                "fleet.recovery", machine=machine.label, round=self.round
            )
            _trace.metrics().counter("fleet.recoveries").inc()
        self._export_state(machine)

    def record_failure(
        self, machine: FleetMachine, kind: str, reason: str
    ) -> None:
        """Record a failed dispatch and apply the breaker policy.

        Crashes quarantine permanently on the spot; transient failures
        open the breaker once the windowed failure rate crosses the
        policy threshold (a half-open probe failure re-opens instantly).
        """
        machine.health.record_failure(kind)
        metrics = _trace.metrics()
        if kind == "crash":
            metrics.counter("fleet.crashes").inc()
            self._quarantine(machine, reason="crash", permanent=True)
        else:
            metrics.counter("fleet.transient_failures").inc()
            was_half_open = machine.breaker.state == HALF_OPEN
            machine.breaker.record(False, self.round)
            if was_half_open:
                self._note_quarantine(machine, machine.breaker.reason or reason)
            elif (
                machine.health.samples >= self.policy.min_samples
                and machine.health.failure_rate()
                >= self.policy.failure_threshold
            ):
                self._quarantine(machine, reason=reason)
        self._export_state(machine)

    def check_quarantines(self) -> None:
        """Apply the latency and corruption policies after a round.

        Straggler detection compares each machine's mean *modeled*
        latency to the fleet median, so a machine whose injected (or
        emergent) slow-down crosses ``straggler_factor`` is quarantined
        deterministically.
        """
        latencies = sorted(
            m.health.mean_latency_us()
            for m in self.machines
            if m.health.successes and m.breaker.state == CLOSED
        )
        median = latencies[len(latencies) // 2] if latencies else 0.0
        for machine in self.machines:
            if machine.breaker.state != CLOSED:
                continue
            if machine.health.samples < self.policy.min_samples:
                continue
            if (
                median > 0.0
                and machine.health.mean_latency_us()
                > self.policy.straggler_factor * median
            ):
                self._quarantine(machine, reason="straggler")
            elif (
                machine.health.mean_chain_breaks()
                >= self.policy.corruption_threshold
            ):
                self._quarantine(machine, reason="corruption")

    # ------------------------------------------------------------------
    def _quarantine(
        self, machine: FleetMachine, reason: str, permanent: bool = False
    ) -> None:
        machine.breaker.trip(self.round, reason=reason, permanent=permanent)
        self._note_quarantine(machine, reason)
        self._export_state(machine)

    def _note_quarantine(self, machine: FleetMachine, reason: str) -> None:
        _trace.event(
            "fleet.quarantine",
            machine=machine.label,
            reason=reason,
            round=self.round,
        )
        _trace.metrics().counter("fleet.quarantines").inc()

    def _export_state(self, machine: FleetMachine) -> None:
        _trace.metrics().gauge(
            f"fleet.machine.{machine.index}.state"
        ).set(machine.breaker.code)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Fleet-wide health view for ``info["fleet"]``."""
        return {
            "machines": self.labels(),
            "quarantined": self.quarantined(),
            "crashed": self.crashed(),
            "rounds": self.round,
            "redispatches": self.redispatches,
            "fallbacks": self.fallbacks,
            "health": {m.label: m.health.snapshot() for m in self.machines},
        }

    def state_dict(self) -> Dict:
        return {
            "round": self.round,
            "redispatches": self.redispatches,
            "fallbacks": self.fallbacks,
            "plan": self.plan.state_dict(),
            "machines": [
                {
                    "health": m.health.state_dict(),
                    "breaker": m.breaker.state_dict(),
                }
                for m in self.machines
            ],
        }

    def load_state(self, state: Dict) -> None:
        self.round = int(state["round"])
        self.redispatches = int(state["redispatches"])
        self.fallbacks = int(state["fallbacks"])
        self.plan.load_state(state["plan"])
        for machine, machine_state in zip(self.machines, state["machines"]):
            machine.health.load_state(machine_state["health"])
            machine.breaker.load_state(machine_state["breaker"])


# ----------------------------------------------------------------------
_FLEET_TOKEN = re.compile(r"^([A-Za-z_]+)[:\-]?(\d*)$")


def parse_fleet_spec(
    text: str, template: Optional[MachineProperties] = None
) -> List[MachineProperties]:
    """Parse ``"C16,P8,Z6"`` into per-machine properties.

    Each comma-separated token names a topology family -- by its
    registered name (``chimera16``), any unambiguous prefix, or its
    single-letter code (``C``/``P``/``Z``) -- followed by an optional
    size (``C16`` = Chimera with ``m=16``; no size picks the family's
    flagship chip).  One token is one machine, so ``"C4,C4,C4,C4"`` is
    a homogeneous 4-machine fleet.

    Every non-topology property (noise, timing, dropout) is inherited
    from ``template`` so heterogeneous fleets differ only where the
    spec says they do.

    Raises:
        ValueError: on empty specs, malformed tokens, or unknown
            (or ambiguous) family names.
    """
    from repro.hardware.registry import resolve_family

    template = template or MachineProperties()
    machines: List[MachineProperties] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        match = _FLEET_TOKEN.match(token)
        if match is None:
            raise ValueError(
                f"bad fleet token {token!r}: expected FAMILY[SIZE], "
                f"e.g. C16 or pegasus8"
            )
        name, size_text = match.groups()
        try:
            family = resolve_family(name)
        except KeyError as exc:
            raise ValueError(f"bad fleet token {token!r}: {exc}") from None
        machines.append(
            replace(
                template,
                topology=family,
                cells=int(size_text) if size_text else None,
            )
        )
    if not machines:
        raise ValueError("fleet spec names no machines")
    return machines


def make_fleet(
    fleet: Union["Fleet", str, Sequence[MachineProperties], None],
    properties: Optional[MachineProperties] = None,
    machines: int = 4,
    policy: Optional[HealthPolicy] = None,
    faults: Optional[FaultSpec] = None,
) -> "Fleet":
    """Normalize the shard solver's ``fleet`` argument into a Fleet.

    ``None`` builds the classic homogeneous fleet of ``machines``
    copies of ``properties``; a string goes through
    :func:`parse_fleet_spec` (with ``properties`` as the template); a
    sequence of properties is taken as-is; an existing :class:`Fleet`
    passes through untouched (its own policy/faults win).
    """
    if isinstance(fleet, Fleet):
        return fleet
    template = properties or MachineProperties()
    if fleet is None:
        return Fleet.homogeneous(
            template, machines, policy=policy, faults=faults
        )
    if isinstance(fleet, str):
        return Fleet.from_spec(
            fleet, template=template, policy=policy, faults=faults
        )
    return Fleet(list(fleet), policy=policy, faults=faults)
