"""repro: Targeting Classical Code to a Quantum Annealer.

A faithful, self-contained reproduction of Pakin's ASPLOS 2019 compiler
pipeline: classical Verilog code is lowered to a digital circuit, to an
EDIF netlist, to QMASM, to a logical quadratic pseudo-Boolean function,
and finally minor-embedded onto a (simulated) D-Wave 2000Q whose
annealing returns the function-minimizing Booleans.  Because the
compiled artifact is a relation rather than a function, programs run
forward (inputs to outputs) or backward (outputs to inputs), turning
NP-problem verifiers into approximate solvers.

Quickstart::

    from repro import run_verilog

    MULT = '''
    module mult (A, B, C);
       input [3:0] A;
       input [3:0] B;
       output[7:0] C;
       assign C = A * B;
    endmodule
    '''
    result = run_verilog(MULT, pins=["C[7:0] := 10001111"],  # 143
                         solver="sa", num_reads=2000, seed=0)
    best = result.valid_solutions[0]
    print(best.value_of("A"), best.value_of("B"))   # 11 x 13 (or 13 x 11)

The same pipeline is servable: ``python -m repro serve --port 8000``
starts the annealing-as-a-service HTTP/JSON job API
(:mod:`repro.service`) -- asynchronous jobs over a bounded worker pool,
compile/embedding caches shared across requests, per-tenant rate
limits, and ``/healthz`` + ``/metrics`` endpoints.
"""

from repro.core.compiler import (
    CompiledProgram,
    CompileOptions,
    VerilogAnnealerCompiler,
    compile_verilog,
    run_verilog,
)
from repro.core.faults import FaultSpec, TransientSolverError, parse_fault_spec
from repro.ising.model import IsingModel
from repro.qmasm.runner import QmasmRunner, RetryPolicy, RunResult, Solution
from repro.solvers.machine import DWaveSimulator, MachineProperties

__version__ = "1.0.0"

__all__ = [
    "CompiledProgram",
    "CompileOptions",
    "VerilogAnnealerCompiler",
    "compile_verilog",
    "run_verilog",
    "FaultSpec",
    "TransientSolverError",
    "parse_fault_spec",
    "IsingModel",
    "QmasmRunner",
    "RetryPolicy",
    "RunResult",
    "Solution",
    "DWaveSimulator",
    "MachineProperties",
    "__version__",
]
