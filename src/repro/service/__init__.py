"""Annealing-as-a-service: the long-lived HTTP/JSON job service.

The batch pipeline (compile -> embed -> anneal) becomes a served
product here: a stdlib-only HTTP server accepts Verilog or QMASM
submissions as asynchronous *jobs*, executes them on a bounded worker
pool that shares the content-addressed compilation and embedding caches
across requests (a warm hit skips straight to sampling), enforces
per-request deadlines and per-tenant token-bucket rate limits, and
exposes health and metrics endpoints rendered from the same
:class:`~repro.core.trace.MetricsRegistry` the rest of the stack
records into.

Surface:

* ``POST /jobs``  -- submit a job (source + pins + run options), get an id
* ``GET /jobs/<id>``        -- status / result / structured error
* ``GET /jobs/<id>/trace``  -- per-stage wall times for a finished job
* ``GET /healthz``          -- liveness, queue depth, job-state counts
* ``GET /metrics``          -- plain-text (or JSON) metrics summary

Durability: with ``--state-dir`` the service write-ahead journals every
job state transition (:mod:`repro.service.journal`) -- a ``202``
is only sent after the accept record (request + materialized seed) is
fsynced, so a crash or SIGKILL at any later instant loses nothing.  On
restart a recovery pass (:mod:`repro.service.recovery`) replays the
journal: finished jobs keep answering ``GET /jobs/<id>``, orphans are
re-enqueued and -- the pipeline being a pure function of request and
seed -- re-run bit-identically, and poison jobs that crashed the worker
twice are quarantined.  Retried ``POST /jobs`` carrying an
``Idempotency-Key`` header (or ``idempotency_key`` field) dedup to the
original job.  SIGTERM takes the same drain-and-flush path as ^C.

Start it with ``python -m repro serve --port 8000 --workers 4`` or
embed it::

    from repro.service import AnnealingServer, ServiceConfig

    server = AnnealingServer(ServiceConfig(port=0, workers=2))
    ...  # server.serve_forever() in a thread; server.shutdown_service()
"""

from repro.service.app import AnnealingServer, AnnealingService, ServiceConfig, serve_main
from repro.service.jobs import Job, JobRequest, JobState, JobStore, ServiceError
from repro.service.journal import JobJournal
from repro.service.queue import WorkerPool
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.recovery import RecoveryReport, recover

__all__ = [
    "AnnealingServer",
    "AnnealingService",
    "ServiceConfig",
    "serve_main",
    "Job",
    "JobRequest",
    "JobState",
    "JobStore",
    "ServiceError",
    "JobJournal",
    "WorkerPool",
    "RateLimiter",
    "TokenBucket",
    "RecoveryReport",
    "recover",
]
