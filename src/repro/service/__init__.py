"""Annealing-as-a-service: the long-lived HTTP/JSON job service.

The batch pipeline (compile -> embed -> anneal) becomes a served
product here: a stdlib-only HTTP server accepts Verilog or QMASM
submissions as asynchronous *jobs*, executes them on a bounded worker
pool that shares the content-addressed compilation and embedding caches
across requests (a warm hit skips straight to sampling), enforces
per-request deadlines and per-tenant token-bucket rate limits, and
exposes health and metrics endpoints rendered from the same
:class:`~repro.core.trace.MetricsRegistry` the rest of the stack
records into.

Surface:

* ``POST /jobs``  -- submit a job (source + pins + run options), get an id
* ``GET /jobs/<id>``        -- status / result / structured error
* ``GET /jobs/<id>/trace``  -- per-stage wall times for a finished job
* ``GET /healthz``          -- liveness, queue depth, job-state counts
* ``GET /metrics``          -- plain-text (or JSON) metrics summary

Start it with ``python -m repro serve --port 8000 --workers 4`` or
embed it::

    from repro.service import AnnealingServer, ServiceConfig

    server = AnnealingServer(ServiceConfig(port=0, workers=2))
    ...  # server.serve_forever() in a thread; server.shutdown_service()
"""

from repro.service.app import AnnealingServer, AnnealingService, ServiceConfig, serve_main
from repro.service.jobs import Job, JobRequest, JobState, JobStore, ServiceError
from repro.service.queue import WorkerPool
from repro.service.ratelimit import RateLimiter, TokenBucket

__all__ = [
    "AnnealingServer",
    "AnnealingService",
    "ServiceConfig",
    "serve_main",
    "Job",
    "JobRequest",
    "JobState",
    "JobStore",
    "ServiceError",
    "WorkerPool",
    "RateLimiter",
    "TokenBucket",
]
