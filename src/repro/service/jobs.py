"""Job model for the annealing service: requests, states, and the store.

A *job* is one submitted problem (Verilog or QMASM source, pins, run
options) moving through ``queued -> running -> {done, error, timeout}``.
Submission-time validation happens in :meth:`JobRequest.from_payload`
so malformed requests are rejected synchronously with a structured
HTTP 400 (diagnostics formatted by
:func:`repro.hdl.errors.format_diagnostic`, the same house style the
CLI uses); everything that can only fail at execution time (elaboration
errors, deadline expiry, solver failures) lands on the job as a
structured terminal error instead.
"""

from __future__ import annotations

import re
import secrets
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.hdl.errors import VerilogError, format_diagnostic
from repro.qmasm.parser import parse_pin, parse_qmasm
from repro.qmasm.program import QmasmError


class JobState:
    """The job lifecycle states (plain strings, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    ERROR = "error"
    TIMEOUT = "timeout"

    TERMINAL = frozenset({DONE, ERROR, TIMEOUT})
    ALL = (QUEUED, RUNNING, DONE, ERROR, TIMEOUT)


class ServiceError(Exception):
    """A structured service-level failure, mapped 1:1 onto an HTTP reply.

    Attributes:
        status: the HTTP status code (400/404/429/503/...).
        code: a stable machine-readable error code
            (``"invalid_source"``, ``"rate_limited"``, ...).
        retry_after_s: when set, rendered as a ``Retry-After`` header.
        details: extra JSON-safe fields merged into the error payload
            (line/column numbers, the formatted diagnostic, ...).
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after_s: Optional[float] = None,
        **details: Any,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s
        self.details = details

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "error": self.code,
            "message": self.message,
            "status": self.status,
        }
        if self.retry_after_s is not None:
            body["retry_after_s"] = round(self.retry_after_s, 6)
        body.update(self.details)
        return body


#: Solvers a job may request; mirrors the CLI's --solver choices.
ALLOWED_SOLVERS = ("dwave", "sa", "sqa", "exact", "tabu", "qbsolv", "shard")
ALLOWED_LANGUAGES = ("verilog", "qmasm")

#: Submission hard caps: a served endpoint must bound what one request
#: can ask of the fleet (the deadline bounds wall time; these bound the
#: requested work shape).
MAX_NUM_READS = 100_000
MAX_NUM_SWEEPS = 1_000_000
MAX_SOURCE_BYTES = 1_000_000
MAX_SOLUTIONS_CAP = 256


def _invalid(message: str, **details: Any) -> ServiceError:
    return ServiceError(400, "invalid_request", message, **details)


def _require_int(
    payload: Dict[str, Any],
    key: str,
    default: Optional[int],
    minimum: int,
    maximum: int,
) -> Optional[int]:
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise _invalid(f"{key!r} must be an integer", field=key)
    if not minimum <= value <= maximum:
        raise _invalid(
            f"{key!r} must be in [{minimum}, {maximum}], got {value}", field=key
        )
    return value


@dataclass(frozen=True)
class JobRequest:
    """A validated submission: everything one job execution needs."""

    source: str
    language: str = "verilog"
    pins: Tuple[str, ...] = ()
    solver: str = "sa"
    num_reads: int = 100
    num_sweeps: Optional[int] = None
    seed: Optional[int] = None
    deadline_s: Optional[float] = None
    top: Optional[str] = None
    unroll_steps: Optional[int] = None
    use_roof_duality: bool = False
    certify: bool = False
    return_samples: bool = False
    max_solutions: int = 16

    @classmethod
    def from_payload(cls, payload: Any) -> "JobRequest":
        """Validate a decoded JSON body into a request (or raise 400).

        Source and pins are *parsed* here -- a submission with a syntax
        error is rejected synchronously with a 400 whose payload
        carries the one-line :func:`format_diagnostic` rendering plus
        the raw line/column, rather than burning a worker slot to
        discover the same thing asynchronously.
        """
        if not isinstance(payload, dict):
            raise _invalid("request body must be a JSON object")
        unknown = sorted(
            set(payload)
            - {f for f in cls.__dataclass_fields__}  # noqa: C416 (py39)
            - {"tenant"}
        )
        if unknown:
            raise _invalid(f"unknown field(s): {', '.join(unknown)}")

        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            raise _invalid("'source' must be a non-empty string", field="source")
        if len(source.encode("utf-8")) > MAX_SOURCE_BYTES:
            raise _invalid(
                f"'source' exceeds {MAX_SOURCE_BYTES} bytes", field="source"
            )
        language = payload.get("language", "verilog")
        if language not in ALLOWED_LANGUAGES:
            raise _invalid(
                f"'language' must be one of {', '.join(ALLOWED_LANGUAGES)}",
                field="language",
            )
        solver = payload.get("solver", "sa")
        if solver not in ALLOWED_SOLVERS:
            raise _invalid(
                f"'solver' must be one of {', '.join(ALLOWED_SOLVERS)}",
                field="solver",
            )

        pins_raw = payload.get("pins", [])
        if isinstance(pins_raw, str):
            pins_raw = [pins_raw]
        if not isinstance(pins_raw, list) or not all(
            isinstance(p, str) for p in pins_raw
        ):
            raise _invalid("'pins' must be a list of strings", field="pins")
        for text in pins_raw:
            try:
                parse_pin(text)
            except QmasmError as exc:
                raise ServiceError(
                    400,
                    "invalid_pin",
                    str(exc),
                    field="pins",
                    diagnostic=format_diagnostic(
                        str(exc), source=f"pin {text!r}"
                    ),
                ) from exc

        num_reads = _require_int(payload, "num_reads", 100, 1, MAX_NUM_READS)
        num_sweeps = _require_int(payload, "num_sweeps", None, 1, MAX_NUM_SWEEPS)
        seed = _require_int(payload, "seed", None, -(2**62), 2**62)
        unroll_steps = _require_int(payload, "unroll_steps", None, 1, 64)
        max_solutions = _require_int(
            payload, "max_solutions", 16, 1, MAX_SOLUTIONS_CAP
        )

        deadline_s = payload.get("deadline_s")
        if deadline_s is not None:
            if isinstance(deadline_s, bool) or not isinstance(
                deadline_s, (int, float)
            ):
                raise _invalid("'deadline_s' must be a number", field="deadline_s")
            if not 0.0 < float(deadline_s) <= 3600.0:
                raise _invalid(
                    "'deadline_s' must be in (0, 3600]", field="deadline_s"
                )
            deadline_s = float(deadline_s)

        top = payload.get("top")
        if top is not None and not isinstance(top, str):
            raise _invalid("'top' must be a string", field="top")
        flags = {}
        for key in ("use_roof_duality", "certify", "return_samples"):
            value = payload.get(key, False)
            if not isinstance(value, bool):
                raise _invalid(f"{key!r} must be a boolean", field=key)
            flags[key] = value

        # Syntax-check the source now: submission is the synchronous
        # moment, and the frontend errors carry line/column positions.
        if language == "verilog":
            try:
                from repro.hdl.parser import parse as parse_verilog

                parse_verilog(source)
            except VerilogError as exc:
                raise ServiceError(
                    400,
                    "invalid_source",
                    str(exc),
                    language="verilog",
                    line=exc.line,
                    column=exc.column,
                    diagnostic=format_diagnostic(str(exc), source="verilog"),
                ) from exc
        else:
            try:
                parse_qmasm(source)
            except QmasmError as exc:
                raise ServiceError(
                    400,
                    "invalid_source",
                    str(exc),
                    language="qmasm",
                    line=exc.line,
                    diagnostic=format_diagnostic(str(exc), source="qmasm"),
                ) from exc

        return cls(
            source=source,
            language=language,
            pins=tuple(pins_raw),
            solver=solver,
            num_reads=num_reads,
            num_sweeps=num_sweeps,
            seed=seed,
            deadline_s=deadline_s,
            top=top,
            unroll_steps=unroll_steps,
            max_solutions=max_solutions,
            **flags,
        )


@dataclass
class Job:
    """One submission moving through the queue; mutated under its lock."""

    id: str
    request: JobRequest
    tenant: str = "anonymous"
    state: str = JobState.QUEUED
    created_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    cache_warm: bool = False
    stage_records: List[Dict[str, Any]] = field(default_factory=list)
    #: Worker pickups so far (journaled; recovery quarantines a job
    #: whose attempts reach the poison threshold with no terminal).
    attempts: int = 0
    #: The submission's Idempotency-Key, when one was given.
    idempotency_key: Optional[str] = None
    #: True when this job was rebuilt from the journal after a restart.
    recovered: bool = False

    def __post_init__(self):
        self._lock = threading.Lock()
        self._terminal_sink: Optional[Callable[["Job"], None]] = None

    def bind_terminal_sink(self, sink: Callable[["Job"], None]) -> None:
        """Install the journal callback invoked on every terminal transition.

        Bound at creation (and at recovery), so *every* path that
        finishes a job -- the executor, the pool's crash guard, the
        queue-full rejection, shutdown fail-out -- durably records the
        terminal state without each call site remembering to.
        """
        self._terminal_sink = sink

    # -- lifecycle -----------------------------------------------------
    def mark_running(self) -> int:
        """Transition to running; returns the (1-based) attempt number."""
        with self._lock:
            self.state = JobState.RUNNING
            self.started_s = time.time()
            self.attempts += 1
            return self.attempts

    def finish(
        self,
        state: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[Dict[str, Any]] = None,
        cache_warm: bool = False,
        stage_records: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        if state not in JobState.TERMINAL:
            raise ValueError(f"{state!r} is not a terminal job state")
        with self._lock:
            self.state = state
            self.finished_s = time.time()
            self.result = result
            self.error = error
            self.cache_warm = cache_warm
            if stage_records is not None:
                self.stage_records = stage_records
            sink = self._terminal_sink
        # The sink fsyncs; invoke it outside the lock so snapshot
        # readers are never blocked behind journal I/O.
        if sink is not None:
            sink(self)

    # -- views ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A consistent JSON-safe view of this job's current state."""
        with self._lock:
            body: Dict[str, Any] = {
                "id": self.id,
                "state": self.state,
                "tenant": self.tenant,
                "solver": self.request.solver,
                "language": self.request.language,
                "created_s": self.created_s,
                "started_s": self.started_s,
                "finished_s": self.finished_s,
                "cache_warm": self.cache_warm,
                "links": {
                    "self": f"/jobs/{self.id}",
                    "trace": f"/jobs/{self.id}/trace",
                },
            }
            if self.started_s is not None:
                body["queue_wait_s"] = self.started_s - self.created_s
            if self.finished_s is not None and self.started_s is not None:
                body["run_s"] = self.finished_s - self.started_s
            if self.result is not None:
                body["result"] = self.result
            if self.error is not None:
                body["error"] = self.error
            if self.attempts > 1:
                body["attempts"] = self.attempts
            if self.recovered:
                body["recovered"] = True
            return body

    def terminal_record(self) -> Dict[str, Any]:
        """The journal's ``terminal`` payload: everything a restarted
        server needs to keep answering ``GET /jobs/<id>`` for this job."""
        with self._lock:
            return {
                "state": self.state,
                "result": self.result,
                "error": self.error,
                "cache_warm": self.cache_warm,
                "stage_records": list(self.stage_records),
                "started_s": self.started_s,
                "finished_s": self.finished_s,
                "attempts": self.attempts,
            }

    def trace_payload(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "id": self.id,
                "state": self.state,
                "stages": list(self.stage_records),
            }

    def is_terminal(self) -> bool:
        with self._lock:
            return self.state in JobState.TERMINAL


_JOB_ID_SEQ_RE = re.compile(r"^job-(\d+)-")


class JobStore:
    """Thread-safe registry of jobs, bounded by evicting old terminals.

    Completed jobs are retained so clients can poll results, but a
    serving process must not grow without bound: once ``max_jobs`` is
    exceeded the oldest *terminal* jobs are evicted first (active jobs
    are never dropped).  Evictions leave a bounded *tombstone* behind,
    so a poll for a recently-evicted job can answer a structured
    ``410 Gone`` (with eviction metadata) instead of an
    indistinguishable-from-a-typo 404.
    """

    def __init__(self, max_jobs: int = 1024, max_tombstones: Optional[int] = None):
        self.max_jobs = max_jobs
        self.max_tombstones = (
            max_tombstones if max_tombstones is not None else max(1024, 4 * max_jobs)
        )
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._tombstones: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self._next_seq = 1

    def create(self, request: JobRequest, tenant: str) -> Job:
        with self._lock:
            job_id = f"job-{self._next_seq:06d}-{secrets.token_hex(4)}"
            self._next_seq += 1
            job = Job(id=job_id, request=request, tenant=tenant)
            self._jobs[job_id] = job
            self._evict_locked()
            return job

    def restore(self, job: Job) -> None:
        """Re-insert a journal-recovered job under its original id.

        Bumps the sequence counter past the recovered id so post-restart
        submissions never reuse a journaled sequence number.
        """
        with self._lock:
            match = _JOB_ID_SEQ_RE.match(job.id)
            if match:
                self._next_seq = max(self._next_seq, int(match.group(1)) + 1)
            self._jobs[job.id] = job
            self._evict_locked()

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def all_jobs(self) -> List[Job]:
        """Retained jobs in insertion order (for journal compaction)."""
        with self._lock:
            return list(self._jobs.values())

    def evicted_info(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Eviction metadata for a job dropped by the retention bound."""
        with self._lock:
            info = self._tombstones.get(job_id)
            return dict(info) if info is not None else None

    def counts(self) -> Dict[str, int]:
        with self._lock:
            by_state = {state: 0 for state in JobState.ALL}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            return by_state

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def _evict_locked(self) -> None:
        if len(self._jobs) <= self.max_jobs:
            return
        for job_id in list(self._jobs):
            if len(self._jobs) <= self.max_jobs:
                break
            job = self._jobs[job_id]
            if job.state in JobState.TERMINAL:
                del self._jobs[job_id]
                self._tombstones[job_id] = {
                    "state_at_eviction": job.state,
                    "created_s": job.created_s,
                    "finished_s": job.finished_s,
                    "evicted_s": time.time(),
                    "tenant": job.tenant,
                }
                while len(self._tombstones) > self.max_tombstones:
                    self._tombstones.popitem(last=False)
