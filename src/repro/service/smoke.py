"""Service smoke test: one cold job, one warm job, assert the contract.

Run against a live server (CI starts ``python -m repro serve`` and
points this at it)::

    python -m repro.service.smoke --url http://127.0.0.1:8000

or fully self-contained (starts an in-process server on an ephemeral
port, exercises it, shuts it down)::

    python -m repro.service.smoke

Exit code 0 means the serving contract held: the server answered
``/healthz``, a cold submission reached ``done``, an identical warm
resubmission also reached ``done`` *with* ``cache_warm`` set, and the
``service.cache_warm`` counter advanced.  Any deviation exits 1 with a
message naming the failed check.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

SMOKE_SOURCE = """
module mult (A, B, C);
   input [3:0] A;
   input [3:0] B;
   output [7:0] C;
   assign C = A * B;
endmodule
"""

SMOKE_JOB = {
    "source": SMOKE_SOURCE,
    "pins": ["C[7:0] := 10001111"],
    "solver": "sa",
    "num_reads": 200,
    "seed": 7,
}


class SmokeFailure(Exception):
    """One named smoke check failed."""


def _request(
    url: str, payload: Optional[Dict[str, Any]] = None, timeout_s: float = 30.0
) -> Tuple[int, Any]:
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json", "X-Tenant": "smoke"},
        method="POST" if payload is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def _await_terminal(base: str, job_id: str, timeout_s: float = 60.0) -> Dict:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _, snapshot = _request(f"{base}/jobs/{job_id}")
        if snapshot.get("state") in ("done", "error", "timeout"):
            return snapshot
        time.sleep(0.05)
    raise SmokeFailure(f"job {job_id} did not finish within {timeout_s}s")


def _expect(condition: bool, check: str) -> None:
    if not condition:
        raise SmokeFailure(check)


def run_smoke(base: str) -> None:
    """The checks; raises :class:`SmokeFailure` with the failing one."""
    status, health = _request(f"{base}/healthz")
    _expect(status == 200 and health.get("status") == "ok", "healthz answered ok")

    status, submitted = _request(f"{base}/jobs", SMOKE_JOB)
    _expect(status == 202, f"cold submission accepted (got {status})")
    cold = _await_terminal(base, submitted["id"])
    _expect(cold["state"] == "done", f"cold job done (got {cold['state']})")
    _expect(
        any(s["valid"] for s in cold["result"]["solutions"]),
        "cold job found a valid factorization",
    )

    status, resubmitted = _request(f"{base}/jobs", SMOKE_JOB)
    _expect(status == 202, f"warm submission accepted (got {status})")
    warm = _await_terminal(base, resubmitted["id"])
    _expect(warm["state"] == "done", f"warm job done (got {warm['state']})")
    _expect(warm["cache_warm"] is True, "warm job flagged cache_warm")

    status, metrics = _request(f"{base}/metrics?format=json")
    _expect(status == 200, "metrics endpoint answered")
    counters = metrics.get("counters", {})
    _expect(
        counters.get("service.cache_warm", 0) >= 1,
        "service.cache_warm counter advanced",
    )
    _expect(
        counters.get("cache.compile.hits", 0) >= 1,
        "shared compile cache recorded the warm hit",
    )


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--url",
        default=None,
        help="base URL of a running server; omit to self-host in-process",
    )
    args = parser.parse_args(argv)

    server = None
    base = args.url
    if base is None:
        import threading

        from repro.service.app import AnnealingServer, ServiceConfig

        server = AnnealingServer(ServiceConfig(port=0, workers=2))
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = server.url
    base = base.rstrip("/")

    try:
        run_smoke(base)
    except SmokeFailure as exc:
        print(f"SMOKE FAIL: {exc}", file=sys.stderr)
        return 1
    finally:
        if server is not None:
            clean = server.shutdown_service()
            if not clean:
                print("SMOKE FAIL: shutdown left threads behind", file=sys.stderr)
                return 1
    print(f"SMOKE OK: cold+warm job lifecycle against {base}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
