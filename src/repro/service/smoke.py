"""Service smoke test: one cold job, one warm job, assert the contract.

Run against a live server (CI starts ``python -m repro serve`` and
points this at it)::

    python -m repro.service.smoke --url http://127.0.0.1:8000

or fully self-contained (starts an in-process server on an ephemeral
port, exercises it, shuts it down)::

    python -m repro.service.smoke

Exit code 0 means the serving contract held: the server answered
``/healthz``, a cold submission reached ``done``, an identical warm
resubmission also reached ``done`` *with* ``cache_warm`` set, and the
``service.cache_warm`` counter advanced.  Any deviation exits 1 with a
message naming the failed check.

Beyond the default checks, the client doubles as the chaos-test driver
(the CI ``service-chaos`` job and the recovery benchmark):

* ``--jobs N --ack-file acks.jsonl`` -- submit N seeded jobs, appending
  one JSONL line per *acknowledged* (202) submission: the job id, its
  idempotency key, and the payload.  ``--no-wait`` skips polling, so
  the file is exactly the set of acknowledgements the durable server
  must honor across a SIGKILL.
* ``--verify-ack-file acks.jsonl`` -- against a restarted server, poll
  every acknowledged job to ``done`` and resubmit one with its original
  idempotency key, asserting the dedup returns the original id.  Any
  acknowledged job the restarted server lost fails the run.

All requests share one retry policy: 429 (rate limited) and 503
(queue full) answers are retried with capped exponential backoff and
deterministic jitter, honoring the server's ``Retry-After`` header for
both statuses.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

SMOKE_SOURCE = """
module mult (A, B, C);
   input [3:0] A;
   input [3:0] B;
   output [7:0] C;
   assign C = A * B;
endmodule
"""

SMOKE_JOB = {
    "source": SMOKE_SOURCE,
    "pins": ["C[7:0] := 10001111"],
    "solver": "sa",
    "num_reads": 200,
    "seed": 7,
}

#: Statuses the client retries: rate limited and queue full are both
#: "back off and resubmit", not errors.
RETRYABLE_STATUSES = (429, 503)
MAX_RETRIES = 8
BACKOFF_BASE_S = 0.1
BACKOFF_CAP_S = 5.0


class SmokeFailure(Exception):
    """One named smoke check failed."""


def backoff_delay(
    attempt: int,
    retry_after_s: Optional[float] = None,
    base_s: float = BACKOFF_BASE_S,
    cap_s: float = BACKOFF_CAP_S,
) -> float:
    """Capped exponential backoff with deterministic jitter.

    ``base * 2**attempt`` capped at ``cap_s``, plus a jitter derived
    from the attempt number itself (not a clock or RNG) so repeated
    runs -- and the tests pinning this policy -- see identical delays
    while concurrent clients still decorrelate by attempt phase.  A
    server-provided ``Retry-After`` is a floor, never ignored: the
    server knows when capacity returns better than any local guess.
    """
    delay = min(base_s * (2.0 ** attempt), cap_s)
    # Deterministic jitter in [0, 25%] of the delay, from a small LCG
    # over the attempt index.
    jitter_frac = ((attempt * 2654435761) % 1000) / 1000.0 * 0.25
    delay += delay * jitter_frac
    if retry_after_s is not None:
        delay = max(delay, retry_after_s)
    return min(delay, cap_s * 1.25)


def _request_once(
    url: str,
    payload: Optional[Dict[str, Any]] = None,
    timeout_s: float = 30.0,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Any, Optional[float]]:
    """One HTTP round trip -> (status, body, retry_after_s)."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    all_headers = {"Content-Type": "application/json", "X-Tenant": "smoke"}
    if headers:
        all_headers.update(headers)
    request = urllib.request.Request(
        url,
        data=data,
        headers=all_headers,
        method="POST" if payload is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8")), None
    except urllib.error.HTTPError as exc:
        retry_after = None
        header = exc.headers.get("Retry-After") if exc.headers else None
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                pass
        return exc.code, json.loads(exc.read().decode("utf-8")), retry_after


def _request(
    url: str,
    payload: Optional[Dict[str, Any]] = None,
    timeout_s: float = 30.0,
    headers: Optional[Dict[str, str]] = None,
    max_retries: int = MAX_RETRIES,
) -> Tuple[int, Any]:
    """An HTTP round trip with unified 429/503 retry.

    Both "slow down" answers -- 429 rate_limited and 503 queue_full --
    take the same capped-backoff path, honoring ``Retry-After`` from
    either.  Retries exhausted returns the last answer for the caller
    to judge.
    """
    status, body, retry_after = _request_once(
        url, payload, timeout_s=timeout_s, headers=headers
    )
    attempt = 0
    while status in RETRYABLE_STATUSES and attempt < max_retries:
        time.sleep(backoff_delay(attempt, retry_after_s=retry_after))
        attempt += 1
        status, body, retry_after = _request_once(
            url, payload, timeout_s=timeout_s, headers=headers
        )
    return status, body


def _await_terminal(base: str, job_id: str, timeout_s: float = 60.0) -> Dict:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _, snapshot = _request(f"{base}/jobs/{job_id}")
        if snapshot.get("state") in ("done", "error", "timeout"):
            return snapshot
        time.sleep(0.05)
    raise SmokeFailure(f"job {job_id} did not finish within {timeout_s}s")


def _expect(condition: bool, check: str) -> None:
    if not condition:
        raise SmokeFailure(check)


def run_smoke(base: str) -> None:
    """The checks; raises :class:`SmokeFailure` with the failing one."""
    status, health = _request(f"{base}/healthz")
    _expect(status == 200 and health.get("status") == "ok", "healthz answered ok")

    status, submitted = _request(f"{base}/jobs", SMOKE_JOB)
    _expect(status == 202, f"cold submission accepted (got {status})")
    cold = _await_terminal(base, submitted["id"])
    _expect(cold["state"] == "done", f"cold job done (got {cold['state']})")
    _expect(
        any(s["valid"] for s in cold["result"]["solutions"]),
        "cold job found a valid factorization",
    )

    status, resubmitted = _request(f"{base}/jobs", SMOKE_JOB)
    _expect(status == 202, f"warm submission accepted (got {status})")
    warm = _await_terminal(base, resubmitted["id"])
    _expect(warm["state"] == "done", f"warm job done (got {warm['state']})")
    _expect(warm["cache_warm"] is True, "warm job flagged cache_warm")

    status, metrics = _request(f"{base}/metrics?format=json")
    _expect(status == 200, "metrics endpoint answered")
    counters = metrics.get("counters", {})
    _expect(
        counters.get("service.cache_warm", 0) >= 1,
        "service.cache_warm counter advanced",
    )
    _expect(
        counters.get("cache.compile.hits", 0) >= 1,
        "shared compile cache recorded the warm hit",
    )


def _load_payload(index: int) -> Dict[str, Any]:
    """One seeded load job; distinct seeds defeat result aliasing."""
    payload = dict(SMOKE_JOB)
    payload["seed"] = 1000 + index
    payload["num_reads"] = 100
    return payload


def run_load(
    base: str,
    jobs: int,
    ack_file: Optional[str] = None,
) -> None:
    """Submit ``jobs`` seeded submissions; record every acknowledgement.

    Each acknowledged (202) submission appends one line to ``ack_file``
    *after* the acknowledgement arrives and is flushed before the next
    submission -- the file is a faithful lower bound on what the server
    acknowledged, which is exactly the durability contract a restart
    must honor.
    """
    handle = open(ack_file, "a", encoding="utf-8") if ack_file else None
    acked = 0
    try:
        for index in range(jobs):
            payload = _load_payload(index)
            key = f"smoke-load-{index}"
            status, body = _request(
                f"{base}/jobs", payload, headers={"Idempotency-Key": key}
            )
            if status != 202:
                # Retries exhausted against a saturated server: stop
                # submitting, but everything already acked still counts.
                print(
                    f"load: submission {index} not accepted after retries "
                    f"(status {status}); stopping at {acked} acks",
                    file=sys.stderr,
                )
                break
            acked += 1
            if handle is not None:
                handle.write(
                    json.dumps(
                        {"id": body["id"], "key": key, "payload": payload},
                        sort_keys=True,
                    )
                    + "\n"
                )
                handle.flush()
    finally:
        if handle is not None:
            handle.close()
    _expect(acked > 0, "load run acknowledged at least one job")
    print(f"load: {acked}/{jobs} submissions acknowledged", flush=True)


def run_verify_acks(base: str, ack_file: str, timeout_s: float = 120.0) -> None:
    """Against a (re)started server, hold it to its acknowledgements.

    Every job the previous incarnation acked must reach ``done`` --
    recovered terminals answer immediately, orphans after replay -- and
    a resubmission carrying the first ack's idempotency key must dedup
    to the original id without re-executing.
    """
    acks: List[Dict[str, Any]] = []
    with open(ack_file, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                acks.append(json.loads(line))
    _expect(bool(acks), f"ack file {ack_file} is non-empty")

    lost: List[str] = []
    states: Dict[str, int] = {}
    for ack in acks:
        try:
            snapshot = _await_terminal(base, ack["id"], timeout_s=timeout_s)
        except SmokeFailure:
            lost.append(ack["id"])
            continue
        state = snapshot.get("state", "?")
        states[state] = states.get(state, 0) + 1
        if state != "done":
            lost.append(f"{ack['id']} ({state})")
    _expect(
        not lost,
        f"all {len(acks)} acknowledged jobs completed; lost/failed: {lost}",
    )

    # Idempotent resubmission: same key + same payload -> original id.
    first = acks[0]
    status, body = _request(
        f"{base}/jobs",
        first["payload"],
        headers={"Idempotency-Key": first["key"]},
    )
    _expect(
        status == 202 and body.get("id") == first["id"],
        "resubmitted idempotency key returned the original job id "
        f"(got status {status}, id {body.get('id')!r}, want {first['id']!r})",
    )
    _expect(
        body.get("deduplicated") is True,
        "resubmission was flagged deduplicated (nothing re-executed)",
    )

    status, metrics = _request(f"{base}/metrics?format=json")
    _expect(status == 200, "metrics endpoint answered after restart")
    counters = metrics.get("counters", {})
    _expect(
        counters.get("service.idempotent_hits", 0) >= 1,
        "service.idempotent_hits counter advanced",
    )
    print(
        f"verify: {len(acks)} acknowledged jobs all done "
        f"(recovered={counters.get('service.recovered_jobs', 0)}, "
        f"requeued={counters.get('service.requeued_jobs', 0)})",
        flush=True,
    )


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--url",
        default=None,
        help="base URL of a running server; omit to self-host in-process",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="load mode: submit N seeded jobs instead of the smoke checks",
    )
    parser.add_argument(
        "--ack-file",
        default=None,
        help="load mode: append one JSONL line per acknowledged submission",
    )
    parser.add_argument(
        "--no-wait",
        action="store_true",
        help="load mode: exit after submitting (don't poll to terminal)",
    )
    parser.add_argument(
        "--verify-ack-file",
        default=None,
        metavar="FILE",
        help="verify mode: poll every acked job in FILE to done and check "
        "idempotent resubmission (requires --url)",
    )
    args = parser.parse_args(argv)

    server = None
    base = args.url
    if base is None:
        import threading

        from repro.service.app import AnnealingServer, ServiceConfig

        server = AnnealingServer(ServiceConfig(port=0, workers=2))
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = server.url
    base = base.rstrip("/")

    try:
        if args.verify_ack_file is not None:
            run_verify_acks(base, args.verify_ack_file)
        elif args.jobs is not None:
            run_load(base, args.jobs, ack_file=args.ack_file)
            if not args.no_wait and args.ack_file:
                run_verify_acks(base, args.ack_file)
        else:
            run_smoke(base)
    except SmokeFailure as exc:
        print(f"SMOKE FAIL: {exc}", file=sys.stderr)
        return 1
    finally:
        if server is not None:
            clean = server.shutdown_service()
            if not clean:
                print("SMOKE FAIL: shutdown left threads behind", file=sys.stderr)
                return 1
    mode = (
        "ack verification"
        if args.verify_ack_file
        else ("load run" if args.jobs is not None else "cold+warm job lifecycle")
    )
    print(f"SMOKE OK: {mode} against {base}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
