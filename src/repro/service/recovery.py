"""Journal replay: rebuild a crashed service's jobs on startup.

Recovery is the read side of the write-ahead contract in
:mod:`repro.service.journal`.  On startup with a ``--state-dir``, the
service replays the journal and sorts every journaled job into one of
three buckets:

* **terminal** -- the job finished before the crash; it is re-inserted
  into the store with its journaled result, so clients polling across
  the restart still get their answer.
* **orphaned** -- accepted (and possibly picked up) but never finished;
  it is re-enqueued through the exact same deterministic pipeline.
  Because the seed was materialized and journaled at accept time, the
  replayed result is bit-identical to the run the crash interrupted.
* **poison** -- a job whose ``running`` count reached the quarantine
  threshold with no terminal record: it crashed the worker process that
  many times, and re-enqueueing it would crash-loop the service.  It is
  finished as a structured ``quarantined`` error instead.

After the rebuild the journal is *compacted* -- rewritten (atomically)
to just the accept/terminal pairs of the jobs actually retained -- so
it stays bounded across restarts instead of accreting every job the
server ever saw.
"""

from __future__ import annotations

import logging
import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.service.jobs import Job, JobRequest, JobState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.app import AnnealingService

logger = logging.getLogger(__name__)

#: Terminal error codes whose idempotency keys must NOT be replayed
#: into the dedup map: the submission never actually ran, so a client
#: retry with the same key *should* re-run it.
_NON_BINDING_ERRORS = frozenset({"queue_full", "shutdown_pending"})


@dataclass
class RecoveryReport:
    """What one recovery pass found and did (rendered into /healthz)."""

    replay_s: float = 0.0
    journal_records: int = 0
    torn_records: int = 0
    #: Jobs rebuilt into the store (terminal + requeued + quarantined).
    recovered_jobs: int = 0
    terminal_jobs: int = 0
    requeued_jobs: int = 0
    quarantined_jobs: int = 0
    idempotency_keys: int = 0
    quarantined_ids: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


def _request_from_record(record: Dict[str, Any]) -> JobRequest:
    """Rebuild the validated request from its journaled fields.

    Unknown keys (from a newer schema) are dropped rather than fatal,
    so a journal written by a later build still recovers.
    """
    fields_ = {
        name: record[name]
        for name in JobRequest.__dataclass_fields__
        if name in record
    }
    if "pins" in fields_:
        fields_["pins"] = tuple(fields_["pins"])
    return JobRequest(**fields_)


def _rebuild_job(ledger, quarantine_after: int) -> Tuple[Job, str]:
    """One ledger -> (job, bucket); bucket in {terminal, requeue, poison}."""
    accept = ledger.accept
    job = Job(
        id=ledger.job_id,
        request=_request_from_record(accept.get("request", {})),
        tenant=accept.get("tenant", "anonymous"),
        created_s=accept.get("created_s", accept.get("ts", time.time())),
        idempotency_key=accept.get("key"),
        attempts=ledger.attempts,
        recovered=True,
    )
    terminal = ledger.terminal
    if terminal is not None:
        job.state = terminal.get("state", JobState.ERROR)
        job.result = terminal.get("result")
        job.error = terminal.get("error")
        job.cache_warm = bool(terminal.get("cache_warm", False))
        job.stage_records = list(terminal.get("stage_records") or [])
        job.started_s = terminal.get("started_s")
        job.finished_s = terminal.get("finished_s", terminal.get("ts"))
        job.attempts = max(job.attempts, int(terminal.get("attempts", 0)))
        return job, "terminal"
    if ledger.attempts >= quarantine_after:
        return job, "poison"
    job.state = JobState.QUEUED
    return job, "requeue"


def recover(service: "AnnealingService") -> Tuple[List[Job], RecoveryReport]:
    """Replay the service's journal into its store.

    Returns the orphaned jobs to re-enqueue (the caller does so after
    starting the worker pool) and the report.  Poison jobs are finished
    as quarantined here -- with the terminal sink bound, so the verdict
    itself is journaled and survives the *next* restart too.
    """
    journal = service.journal
    assert journal is not None, "recover() requires a journaled service"
    start = time.perf_counter()
    replay = journal.replay()
    report = RecoveryReport(
        journal_records=replay.records, torn_records=replay.torn_records
    )
    requeue: List[Job] = []
    accepts: Dict[str, Dict[str, Any]] = {}
    for ledger in replay.ledgers.values():
        if ledger.accept is None:
            # running/terminal records whose accept predates the last
            # compaction horizon: nothing to rebuild from.
            report.torn_records += 1
            continue
        job, bucket = _rebuild_job(ledger, service.config.quarantine_after)
        accepts[job.id] = ledger.accept
        service._bind_journal(job)
        service.store.restore(job)
        report.recovered_jobs += 1
        if bucket == "terminal":
            report.terminal_jobs += 1
        elif bucket == "poison":
            report.quarantined_jobs += 1
            report.quarantined_ids.append(job.id)
            job.finish(
                JobState.ERROR,
                error={
                    "error": "quarantined",
                    "message": (
                        f"job crashed the worker {ledger.attempts} times; "
                        "quarantined instead of re-enqueueing"
                    ),
                    "status": 500,
                    "attempts": ledger.attempts,
                },
            )
            logger.warning(
                "quarantined poison job %s after %d crashed attempts",
                job.id,
                ledger.attempts,
            )
        else:
            requeue.append(job)
        # Rebuild the idempotency map -- except for keys whose job
        # never ran (queue-full / shutdown fail-outs): a retry of
        # those must be allowed to actually execute.
        key = ledger.accept.get("key")
        error_code = (job.error or {}).get("error")
        if key and error_code not in _NON_BINDING_ERRORS:
            service._register_idempotency_key(
                job.tenant, key, job.id, ledger.accept.get("fingerprint")
            )
            report.idempotency_keys += 1

    # Compact: keep exactly the retained jobs' accept/terminal pairs.
    entries = []
    for job in service.store.all_jobs():
        accept = accepts.get(job.id)
        if accept is None:
            continue
        terminal: Optional[Dict[str, Any]] = None
        if job.state in JobState.TERMINAL:
            terminal = {"type": "terminal", "job_id": job.id, **job.terminal_record()}
        entries.append((accept, terminal))
    journal.compact(entries)

    report.requeued_jobs = len(requeue)
    report.replay_s = time.perf_counter() - start
    return requeue, report
