"""Per-tenant token-bucket rate limiting for the annealing service.

The classic serving-side throttle: each tenant owns a bucket of
``burst`` tokens refilled continuously at ``rate`` tokens/second; a
submission costs one token.  An empty bucket answers HTTP 429 with a
``Retry-After`` telling the client exactly when the next token accrues,
so well-behaved clients back off precisely instead of hammering.

The clock is injectable, so the refill arithmetic is exactly testable
without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple


class TokenBucket:
    """One tenant's bucket: ``burst`` capacity, ``rate`` tokens/second."""

    __slots__ = ("rate", "burst", "tokens", "updated_s")

    def __init__(self, rate: float, burst: float, now_s: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated_s = now_s

    def try_acquire(self, now_s: float, cost: float = 1.0) -> Tuple[bool, float]:
        """Spend ``cost`` tokens if available.

        Returns ``(True, 0.0)`` on success, else ``(False,
        retry_after_s)`` where ``retry_after_s`` is the exact time until
        the missing tokens will have accrued.
        """
        elapsed = max(0.0, now_s - self.updated_s)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated_s = now_s
        if self.tokens >= cost:
            self.tokens -= cost
            return True, 0.0
        return False, (cost - self.tokens) / self.rate


class RateLimiter:
    """Lazily-created per-tenant buckets behind one lock.

    Args:
        rate: tokens/second per tenant; ``None`` (or <= 0) disables
            limiting entirely -- every acquire succeeds.
        burst: bucket capacity per tenant (the allowed burst size).
        clock: monotonic time source, injectable for deterministic
            tests.
        max_tenants: bound on tracked buckets; beyond it the
            least-recently-used tenant's bucket is dropped (that tenant
            simply starts a fresh, full bucket later -- a bounded-memory
            tradeoff, not a correctness one).
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
        max_tenants: int = 10_000,
    ):
        self.rate = rate if rate is not None and rate > 0 else None
        self.burst = float(burst)
        self.max_tenants = max_tenants
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def acquire(self, tenant: str, cost: float = 1.0) -> Tuple[bool, float]:
        """Try to admit one request for ``tenant``.

        Returns ``(allowed, retry_after_s)``; ``retry_after_s`` is 0.0
        when allowed.
        """
        if self.rate is None:
            return True, 0.0
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[tenant] = bucket
                while len(self._buckets) > self.max_tenants:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(tenant)
            return bucket.try_acquire(now, cost=cost)

    def tenants(self) -> Dict[str, float]:
        """Current token balances (diagnostic view)."""
        with self._lock:
            return {name: b.tokens for name, b in self._buckets.items()}
