"""Bounded job queue + worker pool for the annealing service.

Submissions land in a bounded :class:`queue.Queue` and are drained by a
fixed pool of worker threads, each executing jobs through the service's
executor callable.  Threads (not processes) are the right grain here:
the executor itself fans heavy sampling out to the deterministic
process-pool machinery in :mod:`repro.solvers.machine` when a job asks
for ``max_workers``, so the service threads mostly orchestrate and
share the in-process caches.

Shutdown is a first-class contract (the test suite asserts it): with
``drain=True`` every queued and in-flight job completes before the
workers exit; without it, queued jobs are failed out as
``shutdown_pending`` and only the in-flight ones finish.  Either way
:meth:`WorkerPool.shutdown` joins every worker under a wall-clock bound
and reports whether the pool wound down cleanly -- callers never guess
about orphaned threads.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from typing import Callable, List, Optional

from repro.service.jobs import Job, JobState

logger = logging.getLogger(__name__)


class WorkerPool:
    """Fixed thread pool draining a bounded job queue.

    Args:
        execute: callable invoked with each :class:`Job`; it must set
            the job's terminal state itself (the pool adds a
            last-resort catch so an executor bug can never kill a
            worker thread).
        workers: thread count.
        queue_size: bound on queued (not yet running) jobs; a full
            queue rejects submissions (HTTP 503 upstream).
        name: thread-name prefix (visible in stack dumps).
    """

    def __init__(
        self,
        execute: Callable[[Job], None],
        workers: int = 2,
        queue_size: int = 64,
        name: str = "repro-service",
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self._execute = execute
        self.workers = workers
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(maxsize=queue_size)
        self._threads: List[threading.Thread] = []
        self._accepting = False
        self._closed = False
        self._lock = threading.Lock()
        self._name = name

    # ------------------------------------------------------------------
    def start(self) -> None:
        with self._lock:
            if self._threads:
                return
            self._accepting = True
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"{self._name}-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    def submit(self, job: Job) -> bool:
        """Enqueue a job; False when the pool is full or shut down."""
        with self._lock:
            if not self._accepting:
                return False
        try:
            self._queue.put_nowait(job)
            return True
        except queue.Full:
            return False

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def alive_workers(self) -> int:
        return sum(1 for t in self._threads if t.is_alive())

    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                try:
                    self._execute(item)
                except Exception:
                    # The executor is responsible for terminal states;
                    # this is the belt-and-braces path so a bug there
                    # cannot take a worker thread down with it.
                    logger.exception("job %s crashed the executor", item.id)
                    if not item.is_terminal():
                        item.finish(
                            JobState.ERROR,
                            error={
                                "error": "internal",
                                "message": "executor crashed; see server log",
                                "status": 500,
                            },
                        )
            finally:
                self._queue.task_done()

    # ------------------------------------------------------------------
    def _wait_drained(self, deadline_s: float) -> bool:
        """``queue.join()`` with a wall-clock bound."""
        with self._queue.all_tasks_done:
            while self._queue.unfinished_tasks:
                remaining = deadline_s - time.monotonic()
                if remaining <= 0:
                    return False
                self._queue.all_tasks_done.wait(remaining)
        return True

    def shutdown(self, drain: bool = True, timeout_s: float = 30.0) -> bool:
        """Stop the pool; returns True iff it wound down cleanly.

        ``drain=True`` waits (bounded) for every queued and in-flight
        job to reach a terminal state first; ``drain=False`` fails
        queued jobs out immediately and only waits for the in-flight
        ones.  Idempotent: repeated calls return the (settled) verdict
        of whether all workers are gone.
        """
        deadline_s = time.monotonic() + timeout_s
        with self._lock:
            self._accepting = False
            already_closed = self._closed
            self._closed = True
        clean = True
        if not already_closed:
            if drain:
                clean = self._wait_drained(deadline_s)
            else:
                while True:
                    try:
                        pending = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    try:
                        if pending is not None and not pending.is_terminal():
                            pending.finish(
                                JobState.ERROR,
                                error={
                                    "error": "shutdown_pending",
                                    "message": "server shut down before "
                                    "this job started",
                                    "status": 503,
                                },
                            )
                    finally:
                        self._queue.task_done()
            for _ in self._threads:
                try:
                    self._queue.put(
                        None, timeout=max(0.0, deadline_s - time.monotonic())
                    )
                except queue.Full:
                    clean = False
        for thread in self._threads:
            thread.join(max(0.0, deadline_s - time.monotonic()))
            if thread.is_alive():
                clean = False
        return clean
