"""The annealing service HTTP layer: stdlib-only, thread-per-request.

:class:`AnnealingService` is the transport-agnostic core -- job store,
worker pool, shared caches, rate limiter, metrics registry --
and :class:`AnnealingServer` mounts it on a
:class:`http.server.ThreadingHTTPServer`.  No framework, no new
dependencies: the request handlers parse/emit JSON by hand, which keeps
the service importable anywhere the compiler itself is.

Cache sharing is the point of the long-lived process: every job
executes through a *per-job* :class:`VerilogAnnealerCompiler` seeded
from the request (so concurrent identical submissions are bit-identical
to a serial run), but all jobs share the service's content-addressed
:class:`~repro.core.cache.CompilationCache` and
:class:`~repro.core.cache.EmbeddingCache` -- a warm submission skips
compilation and embedding entirely and goes straight to sampling,
surfaced as the ``service.cache_warm`` counter and the job's
``cache_warm`` field.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import logging
import os
import re
import secrets
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.cache import CompilationCache, EmbeddingCache, stable_hash
from repro.core.compiler import CompileOptions, VerilogAnnealerCompiler
from repro.core.deadline import Deadline, DeadlineExceeded
from repro.core.trace import MetricsRegistry
from repro.hdl.errors import VerilogError, format_diagnostic
from repro.qmasm.program import QmasmError
from repro.qmasm.runner import RunResult, json_safe
from repro.service.jobs import (
    Job,
    JobRequest,
    JobState,
    JobStore,
    ServiceError,
)
from repro.service.journal import JobJournal
from repro.service.queue import WorkerPool
from repro.service.ratelimit import RateLimiter
from repro.service.recovery import RecoveryReport, recover

logger = logging.getLogger(__name__)

_JOB_PATH_RE = re.compile(r"^/jobs/([A-Za-z0-9_\-]+)(/trace)?$")

#: Chaos-testing hook: when set to a pipeline stage name (``elaborate``,
#: ``find_embedding``, ``sample``, ...), the worker hard-exits the
#: process (``os._exit(137)``, indistinguishable from a SIGKILL) the
#: moment that stage begins.  The recovery kill-matrix tests use it to
#: crash the service deterministically at each pipeline stage.
CRASH_STAGE_ENV = "REPRO_SERVICE_CRASH_STAGE"

#: Submission cap on Idempotency-Key length.
MAX_IDEMPOTENCY_KEY_LEN = 256


def _payload_fingerprint(payload: Any) -> str:
    """Canonical digest of a submission body (idempotency conflict check)."""
    return stable_hash(
        "payload:" + json.dumps(payload, sort_keys=True, default=str)
    )


def _crash_stage_hook() -> Optional[Callable[[Dict[str, Any]], None]]:
    stage = os.environ.get(CRASH_STAGE_ENV)
    if not stage:
        return None

    def hook(event: Dict[str, Any]) -> None:
        if event.get("event") == "begin" and event.get("stage") == stage:
            os._exit(137)

    return hook


@dataclass
class ServiceConfig:
    """Everything one serving process is configured by."""

    host: str = "127.0.0.1"
    port: int = 8000
    #: Worker threads draining the job queue.
    workers: int = 2
    #: Bound on queued (not yet running) jobs; full -> HTTP 503.
    queue_size: int = 64
    #: Per-tenant token-bucket refill rate (submissions/second); None
    #: disables rate limiting.
    rate_limit_per_s: Optional[float] = 20.0
    #: Per-tenant burst capacity (bucket size).
    rate_limit_burst: float = 40.0
    #: Optional on-disk tier for the shared compile/embedding caches,
    #: so a restarted (or co-located) server starts warm.
    cache_dir: Optional[str] = None
    #: Retained-job bound for the store (oldest terminals evicted).
    max_jobs: int = 1024
    #: Hardware family for jobs that need a machine (dwave/shard).
    topology: str = "chimera"
    topology_size: Optional[int] = None
    #: Simulated fleet size for shard jobs.
    machines: int = 4
    #: Request-body bound.
    max_body_bytes: int = 2_000_000
    #: Directory for the write-ahead job journal; None keeps all job
    #: state in memory (a crash loses queued/in-flight jobs).
    state_dir: Optional[str] = None
    #: Replay the journal on startup (re-enqueue orphans, restore
    #: terminal results).  Only meaningful with ``state_dir``.
    recover: bool = True
    #: A job whose journaled attempts reach this count with no terminal
    #: record crashed the worker that many times: quarantine it on
    #: recovery instead of re-enqueueing it into a crash loop.
    quarantine_after: int = 2
    #: Bound on tracked (tenant, Idempotency-Key) pairs; oldest dropped.
    max_idempotency_keys: int = 4096


class AnnealingService:
    """The transport-agnostic service core (store, pool, caches, limits)."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        cfg = self.config
        self.started_s = time.time()
        self.store = JobStore(max_jobs=cfg.max_jobs)
        self.compile_cache = CompilationCache(cache_dir=self._cache_dir("compile"))
        self.embedding_cache = EmbeddingCache(cache_dir=self._cache_dir("embedding"))
        self.limiter = RateLimiter(cfg.rate_limit_per_s, burst=cfg.rate_limit_burst)
        self.pool = WorkerPool(
            self.execute, workers=cfg.workers, queue_size=cfg.queue_size
        )
        self.journal: Optional[JobJournal] = (
            JobJournal(cfg.state_dir) if cfg.state_dir else None
        )
        self.recovery_report: Optional[RecoveryReport] = None
        self._idempotency: "OrderedDict[Tuple[str, str], Tuple[str, Optional[str]]]" = (
            OrderedDict()
        )
        self._idempotency_lock = threading.Lock()
        self._crash_hook = _crash_stage_hook()
        self.metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._cache_sync: Dict[str, float] = {}
        # Pre-register the serving metrics so a freshly started server's
        # /metrics is complete and well-defined at zero requests (the
        # derived cache hit ratios render as "n/a (0 lookups)", never a
        # divide-by-zero or NaN).
        for name in (
            "service.requests",
            "service.jobs_submitted",
            "service.jobs_completed",
            "service.jobs_failed",
            "service.jobs_timeout",
            "service.cache_warm",
            "service.cache_cold",
            "service.rate_limited",
            "service.queue_rejections",
            "service.idempotent_hits",
            "service.idempotency_conflicts",
            "service.recovered_jobs",
            "service.requeued_jobs",
            "service.quarantined_jobs",
            "service.gone_410",
            "journal.records",
            "journal.torn_records",
            "cache.compile.hits",
            "cache.compile.misses",
            "cache.embedding.hits",
            "cache.embedding.misses",
        ):
            self.metrics.counter(name)
        self.metrics.gauge("service.queue_depth")
        self.metrics.gauge("service.workers_alive").set(0)
        self.metrics.gauge("service.recovery_replay_s").set(0.0)

    def _cache_dir(self, kind: str) -> Optional[str]:
        if self.config.cache_dir is None:
            return None
        return os.path.join(self.config.cache_dir, kind)

    # -- metrics helpers ----------------------------------------------
    def _count(self, name: str, amount: float = 1) -> None:
        """Exact (lock-guarded) counter increment across worker threads."""
        with self._metrics_lock:
            self.metrics.counter(name).inc(amount)

    def _observe(self, name: str, value: float) -> None:
        with self._metrics_lock:
            self.metrics.histogram(name).observe(value)

    def _sync_cache_metrics(self) -> None:
        """Mirror the shared caches' stats into the registry as counters.

        The caches count on their own :class:`CacheStats`; at render
        time the deltas since the last sync are folded into
        ``cache.<kind>.*`` counters so ``render_summary`` derives the
        hit ratios the load-test benchmark reports.
        """
        with self._metrics_lock:
            for kind, cache in (
                ("compile", self.compile_cache),
                ("embedding", self.embedding_cache),
            ):
                for field in ("hits", "misses", "stores", "disk_errors"):
                    current = getattr(cache.stats, field)
                    key = f"cache.{kind}.{field}"
                    previous = self._cache_sync.get(key, 0)
                    if current > previous:
                        self.metrics.counter(key).inc(current - previous)
                        self._cache_sync[key] = current
            self.metrics.gauge("service.queue_depth").set(self.pool.queue_depth())
            self.metrics.gauge("service.workers_alive").set(
                self.pool.alive_workers()
            )
            self.metrics.gauge("service.uptime_s").set(
                time.time() - self.started_s
            )

    # -- journal plumbing ----------------------------------------------
    def _bind_journal(self, job: Job) -> None:
        """Attach the terminal sink so every finish() is journaled."""
        if self.journal is not None:
            job.bind_terminal_sink(self._journal_terminal)

    def _journal_terminal(self, job: Job) -> None:
        try:
            self.journal.terminal(job.id, job.terminal_record())
            self._count("journal.records")
        except Exception:  # pragma: no cover - disk failure guard
            # Durability degraded, but a journal write failure must not
            # take the worker (or the job's in-memory result) with it.
            logger.exception("failed to journal terminal for job %s", job.id)

    def _register_idempotency_key(
        self, tenant: str, key: str, job_id: str, fingerprint: Optional[str]
    ) -> None:
        with self._idempotency_lock:
            self._idempotency[(tenant, key)] = (job_id, fingerprint)
            self._idempotency.move_to_end((tenant, key))
            while len(self._idempotency) > self.config.max_idempotency_keys:
                self._idempotency.popitem(last=False)

    def _idempotency_lookup(
        self, tenant: str, key: str
    ) -> Optional[Tuple[str, Optional[str]]]:
        with self._idempotency_lock:
            entry = self._idempotency.get((tenant, key))
            if entry is not None:
                self._idempotency.move_to_end((tenant, key))
            return entry

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Recover journaled jobs (if configured), then start serving."""
        requeue: List[Job] = []
        if self.journal is not None and self.config.recover:
            requeue, report = recover(self)
            self.recovery_report = report
            self._count("service.recovered_jobs", report.recovered_jobs)
            self._count("service.quarantined_jobs", report.quarantined_jobs)
            self._count("journal.torn_records", report.torn_records)
            with self._metrics_lock:
                self.metrics.gauge("service.recovery_replay_s").set(
                    report.replay_s
                )
            if report.recovered_jobs:
                logger.info(
                    "recovered %d journaled job(s) in %.0fms "
                    "(%d terminal, %d requeued, %d quarantined)",
                    report.recovered_jobs,
                    report.replay_s * 1000,
                    report.terminal_jobs,
                    report.requeued_jobs,
                    report.quarantined_jobs,
                )
        self.pool.start()
        for job in requeue:
            if self.pool.submit(job):
                self._count("service.requeued_jobs")
            else:
                job.finish(
                    JobState.ERROR,
                    error={
                        "error": "queue_full",
                        "message": "recovered job could not be re-enqueued "
                        "(queue full); resubmit it",
                        "status": 503,
                    },
                )

    def shutdown(self, drain: bool = True, timeout_s: float = 30.0) -> bool:
        """Stop the worker pool; True iff it wound down cleanly.

        With a journal, the drain is what makes restarts exact: every
        in-flight job reaches a journaled terminal state before the
        final flush-and-close, so the next recovery has nothing to
        re-run.
        """
        clean = self.pool.shutdown(drain=drain, timeout_s=timeout_s)
        if self.journal is not None:
            self.journal.close()
        return clean

    # -- submission ----------------------------------------------------
    def _extract_idempotency_key(
        self, payload: Any, header_key: Optional[str]
    ) -> Tuple[Any, Optional[str]]:
        """Pull the key out of the body (or take the header's); validate."""
        key = header_key
        if isinstance(payload, dict) and "idempotency_key" in payload:
            payload = dict(payload)
            field_key = payload.pop("idempotency_key")
            if field_key is not None:
                key = key or field_key
        if key is not None:
            if (
                not isinstance(key, str)
                or not key.strip()
                or len(key) > MAX_IDEMPOTENCY_KEY_LEN
            ):
                raise ServiceError(
                    400,
                    "invalid_request",
                    "idempotency key must be a non-empty string of at most "
                    f"{MAX_IDEMPOTENCY_KEY_LEN} characters",
                    field="idempotency_key",
                )
            key = key.strip()
        return payload, key

    def submit(
        self,
        payload: Any,
        tenant: str = "anonymous",
        idempotency_key: Optional[str] = None,
    ) -> Tuple[Job, bool]:
        """Validate and enqueue one submission (or raise ServiceError).

        Returns ``(job, deduplicated)``: a resubmission carrying an
        already-seen ``Idempotency-Key`` (with a byte-identical payload)
        returns the *original* job without executing anything -- the
        retry-after-a-lost-202 path -- and never spends a rate-limit
        token.  The same key with a *different* payload is a structured
        409 conflict.
        """
        payload, key = self._extract_idempotency_key(payload, idempotency_key)
        fingerprint: Optional[str] = None
        if key is not None:
            fingerprint = _payload_fingerprint(payload)
            existing = self._idempotency_lookup(tenant, key)
            if existing is not None:
                job_id, stored_fp = existing
                if stored_fp is not None and stored_fp != fingerprint:
                    self._count("service.idempotency_conflicts")
                    raise ServiceError(
                        409,
                        "idempotency_conflict",
                        f"idempotency key {key!r} was already used with a "
                        "different payload",
                        idempotency_key=key,
                    )
                job = self.store.get(job_id)
                if job is not None:
                    self._count("service.idempotent_hits")
                    return job, True
                # The original job aged out of retention; surfacing
                # that beats silently re-running a request the client
                # believes already executed.
                raise ServiceError(
                    410,
                    "gone",
                    f"the job for idempotency key {key!r} was evicted by "
                    "the retention bound",
                    idempotency_key=key,
                    original_job_id=job_id,
                )
        allowed, retry_after = self.limiter.acquire(tenant)
        if not allowed:
            self._count("service.rate_limited")
            raise ServiceError(
                429,
                "rate_limited",
                f"tenant {tenant!r} exceeded its submission rate",
                retry_after_s=retry_after,
                tenant=tenant,
            )
        request = JobRequest.from_payload(payload)
        if self.journal is not None and request.seed is None:
            # Materialize the seed now so it lands in the accept record:
            # a journal replay re-runs the job bit-identically to the
            # run the crash interrupted.
            request = dataclasses.replace(request, seed=secrets.randbits(31))
        job = self.store.create(request, tenant)
        job.idempotency_key = key
        self._bind_journal(job)
        if self.journal is not None:
            # WAL ordering: the accept record is fsynced before the job
            # is enqueued (and before the caller's 202 goes out), so an
            # acknowledged job can never be lost to a crash.
            self.journal.accept(
                job.id,
                tenant,
                dataclasses.asdict(request),
                job.created_s,
                idempotency_key=key,
                fingerprint=fingerprint,
            )
            self._count("journal.records")
        if not self.pool.submit(job):
            job.finish(
                JobState.ERROR,
                error={
                    "error": "queue_full",
                    "message": "job queue is full; retry later",
                    "status": 503,
                },
            )
            self._count("service.queue_rejections")
            raise ServiceError(
                503,
                "queue_full",
                "job queue is full; retry later",
                retry_after_s=1.0,
            )
        self._count("service.jobs_submitted")
        if key is not None:
            self._register_idempotency_key(tenant, key, job.id, fingerprint)
        return job, False

    # -- execution -----------------------------------------------------
    def _make_compiler(self, request: JobRequest) -> VerilogAnnealerCompiler:
        """A per-job compiler seeded from the request, on shared caches.

        Fresh per job so each job's RNG state is a pure function of its
        seed (concurrent identical submissions stay bit-identical to a
        serial run); the content-addressed caches are the shared,
        order-insensitive tier.
        """
        machine = None
        if request.solver in ("dwave", "shard"):
            from repro.solvers.machine import DWaveSimulator, MachineProperties

            machine = DWaveSimulator(
                properties=MachineProperties(
                    topology=self.config.topology,
                    cells=self.config.topology_size,
                ),
                seed=request.seed,
            )
        compiler = VerilogAnnealerCompiler(
            machine=machine,
            seed=request.seed,
            cache=self.compile_cache,
            machines=self.config.machines,
            trace=self._crash_hook,
        )
        compiler.runner.embedding_cache = self.embedding_cache
        return compiler

    def _run_request(
        self, request: JobRequest, deadline: Optional[Deadline]
    ) -> Tuple[RunResult, bool, List[Dict[str, Any]]]:
        """Execute one request; returns (result, cache_warm, stages)."""
        compiler = self._make_compiler(request)
        stages: List[Dict[str, Any]] = []
        run_kwargs = dict(
            pins=list(request.pins),
            solver=request.solver,
            num_reads=request.num_reads,
            num_sweeps=request.num_sweeps,
            use_roof_duality=request.use_roof_duality,
            certify=request.certify,
            deadline=deadline,
        )
        if request.language == "verilog":
            options = CompileOptions(
                top=request.top, unroll_steps=request.unroll_steps
            )
            machine = compiler.runner.machine
            target = (
                machine.topology.fingerprint() if machine is not None else "any"
            )
            key = CompilationCache.key_for(request.source, options, target)
            warm = self.compile_cache.contains(key)
            program = compiler.compile(request.source, options)
            stages.extend(_stage_payload("compile", program.stats, cached=warm))
            result = compiler.run(program, **run_kwargs)
        else:
            warm = False
            result = compiler.runner.run(request.source, **run_kwargs)
        # An embedding served from the shared cache is just as warm as a
        # cached compilation: the job skipped straight to sampling.
        warm = warm or result.info.get("embedding_cache") == "hit"
        stages.extend(_stage_payload("run", result.stats))
        return result, warm, stages

    def execute(self, job: Job) -> None:
        """Worker entrypoint: run one job to a terminal state."""
        attempt = job.mark_running()
        if self.journal is not None:
            # The running record is what lets recovery count crashed
            # attempts: reach the quarantine threshold with no terminal
            # and the job is poison, not merely unlucky.
            self.journal.running(job.id, attempt)
            self._count("journal.records")
        request = job.request
        deadline = (
            Deadline(request.deadline_s) if request.deadline_s is not None else None
        )
        try:
            result, warm, stages = self._run_request(request, deadline)
            payload = result.result_payload(
                max_solutions=request.max_solutions,
                include_samples=request.return_samples,
            )
            job.finish(
                JobState.DONE, result=payload, cache_warm=warm, stage_records=stages
            )
            self._count("service.jobs_completed")
            self._count("service.cache_warm" if warm else "service.cache_cold")
        except DeadlineExceeded as exc:
            job.finish(
                JobState.TIMEOUT,
                error={
                    "error": "deadline_exceeded",
                    "message": str(exc),
                    # The classic request-timeout status, surfaced in the
                    # job body (the poll itself still answers 200).
                    "status": 408,
                    "stage": exc.stage,
                    "budget_s": exc.budget_s,
                    "elapsed_s": exc.elapsed_s,
                },
            )
            self._count("service.jobs_timeout")
        except ServiceError as exc:
            job.finish(JobState.ERROR, error=exc.payload())
            self._count("service.jobs_failed")
        except (VerilogError, QmasmError) as exc:
            # Parse-clean source can still fail elaboration/assembly
            # (unknown top module, width errors, unknown pin targets).
            job.finish(
                JobState.ERROR,
                error={
                    "error": "invalid_source",
                    "message": str(exc),
                    "status": 400,
                    "diagnostic": format_diagnostic(
                        str(exc), source=request.language
                    ),
                },
            )
            self._count("service.jobs_failed")
        except ValueError as exc:
            job.finish(
                JobState.ERROR,
                error={
                    "error": "unprocessable",
                    "message": str(exc),
                    "status": 422,
                },
            )
            self._count("service.jobs_failed")
        except Exception as exc:  # pragma: no cover - last-resort guard
            logger.exception("job %s failed unexpectedly", job.id)
            job.finish(
                JobState.ERROR,
                error={
                    "error": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                    "status": 500,
                },
            )
            self._count("service.jobs_failed")
        finally:
            snapshot = job.snapshot()
            if "queue_wait_s" in snapshot:
                self._observe("service.job_queue_wait_s", snapshot["queue_wait_s"])
            if "run_s" in snapshot:
                self._observe("service.job_run_s", snapshot["run_s"])

    # -- views ---------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        body = {
            "status": "ok",
            "uptime_s": time.time() - self.started_s,
            "workers": self.pool.workers,
            "workers_alive": self.pool.alive_workers(),
            "queue_depth": self.pool.queue_depth(),
            "jobs": self.store.counts(),
            "journal": {
                "enabled": self.journal is not None,
                "records_written": (
                    self.journal.records_written if self.journal else 0
                ),
            },
        }
        if self.recovery_report is not None:
            body["recovery"] = self.recovery_report.as_dict()
        return body

    def metrics_text(self) -> str:
        self._sync_cache_metrics()
        with self._metrics_lock:
            return self.metrics.render_summary(title="service metrics:")

    def metrics_json(self) -> Dict[str, Any]:
        self._sync_cache_metrics()
        with self._metrics_lock:
            body = self.metrics.as_dict()
        body["derived"] = {
            "cache.compile.hit_ratio": self.compile_cache.stats.hit_rate,
            "cache.embedding.hit_ratio": self.embedding_cache.stats.hit_rate,
        }
        return body


def _stage_payload(
    pipeline: str, stats, cached: bool = False
) -> List[Dict[str, Any]]:
    """PipelineStats -> JSON-safe per-stage records for the trace view."""
    records = []
    for record in stats:
        records.append(
            {
                "pipeline": pipeline,
                "name": record.name,
                "wall_time_s": record.wall_time_s,
                "cached": bool(record.cached or cached),
                "skipped": bool(record.skipped),
                "counters": {k: json_safe(v) for k, v in record.counters.items()},
            }
        )
    return records


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the mounted :class:`AnnealingService`."""

    #: Set by :class:`AnnealingServer` on its per-instance subclass.
    service: AnnealingService = None  # type: ignore[assignment]
    server_version = "repro-anneald/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        retry_after_s: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After", f"{max(retry_after_s, 0.0):.3f}")
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_payload(self, exc: ServiceError) -> None:
        self._send_json(exc.status, exc.payload(), retry_after_s=exc.retry_after_s)

    def _tenant(self) -> str:
        tenant = self.headers.get("X-Tenant", "anonymous").strip() or "anonymous"
        return tenant[:128]

    def _read_body(self) -> bytes:
        length_text = self.headers.get("Content-Length")
        try:
            length = int(length_text) if length_text is not None else 0
        except ValueError:
            raise ServiceError(400, "invalid_request", "bad Content-Length")
        if length <= 0:
            raise ServiceError(400, "invalid_request", "request body required")
        if length > self.service.config.max_body_bytes:
            raise ServiceError(
                413,
                "payload_too_large",
                f"request body exceeds {self.service.config.max_body_bytes} bytes",
            )
        return self.rfile.read(length)

    def _dispatch(self, method: str) -> None:
        service = self.service
        start = time.perf_counter()
        url = urlsplit(self.path)
        try:
            service._count("service.requests")
            if method == "POST" and url.path == "/jobs":
                service._count("service.requests.jobs_post")
                self._post_jobs()
            elif method == "GET" and url.path == "/healthz":
                service._count("service.requests.healthz")
                self._send_json(200, service.health())
            elif method == "GET" and url.path == "/metrics":
                service._count("service.requests.metrics")
                query = parse_qs(url.query)
                if query.get("format", [""])[0] == "json":
                    self._send_json(200, service.metrics_json())
                else:
                    self._send_text(200, service.metrics_text() + "\n")
            elif method == "GET" and _JOB_PATH_RE.match(url.path):
                service._count("service.requests.jobs_get")
                self._get_job(_JOB_PATH_RE.match(url.path))
            else:
                raise ServiceError(
                    404, "not_found", f"no route for {method} {url.path}"
                )
        except ServiceError as exc:
            self._send_error_payload(exc)
        except BrokenPipeError:  # client went away mid-reply
            pass
        except Exception as exc:  # pragma: no cover - last-resort guard
            logger.exception("unhandled error serving %s %s", method, self.path)
            self._send_json(
                500,
                {
                    "error": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                    "status": 500,
                },
            )
        finally:
            service._observe(
                "service.http_latency_s", time.perf_counter() - start
            )

    # -- routes --------------------------------------------------------
    def _post_jobs(self) -> None:
        body = self._read_body()
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                400, "invalid_json", f"request body is not valid JSON: {exc}"
            ) from exc
        job, deduplicated = self.service.submit(
            payload,
            tenant=self._tenant(),
            idempotency_key=self.headers.get("Idempotency-Key"),
        )
        body = {
            "id": job.id,
            "state": job.state,
            "links": {
                "self": f"/jobs/{job.id}",
                "trace": f"/jobs/{job.id}/trace",
            },
        }
        if deduplicated:
            # The retry-after-a-lost-202 path: same key, same payload,
            # the original job -- nothing was re-executed.
            body["deduplicated"] = True
        self._send_json(202, body)

    def _get_job(self, match: "re.Match[str]") -> None:
        job_id, trace = match.group(1), match.group(2)
        job = self.service.store.get(job_id)
        if job is None:
            evicted = self.service.store.evicted_info(job_id)
            if evicted is not None:
                # "Existed, completed, aged out" is not "never existed":
                # a 410 with the eviction metadata lets clients stop
                # retrying instead of treating the id as a typo.
                self.service._count("service.gone_410")
                raise ServiceError(
                    410,
                    "gone",
                    f"job {job_id!r} was evicted by the retention bound",
                    **evicted,
                )
            raise ServiceError(404, "not_found", f"no job {job_id!r}")
        if trace:
            self._send_json(200, job.trace_payload())
        else:
            self._send_json(200, job.snapshot())

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("POST")


class AnnealingServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer bound to one :class:`AnnealingService`.

    ``daemon_threads`` keeps per-request handler threads from pinning
    process exit; worker threads are owned (and joined) by the service's
    pool, through :meth:`shutdown_service`.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, config: Optional[ServiceConfig] = None):
        config = config or ServiceConfig()
        self.service = AnnealingService(config)
        handler = type("BoundHandler", (_Handler,), {"service": self.service})
        super().__init__((config.host, config.port), handler)
        self.service.start()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown_service(self, drain: bool = True, timeout_s: float = 30.0) -> bool:
        """Stop accepting, close the socket, and wind down the workers.

        Returns True iff every queued/in-flight job reached a terminal
        state (``drain=True``) and every worker thread exited within
        the bound.  Safe to call more than once.
        """
        self.shutdown()
        self.server_close()
        return self.service.shutdown(drain=drain, timeout_s=timeout_s)


# ----------------------------------------------------------------------
# CLI: ``python -m repro serve``
# ----------------------------------------------------------------------
def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve the Verilog/QMASM -> annealer pipeline as a long-lived "
            "HTTP/JSON job service (POST /jobs, GET /jobs/<id>, /healthz, "
            "/metrics)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument(
        "--workers", type=int, default=2, help="job worker threads (default: 2)"
    )
    parser.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="queued-job bound; a full queue answers 503 (default: 64)",
    )
    parser.add_argument(
        "--rate-limit",
        type=float,
        default=20.0,
        metavar="PER_S",
        help="per-tenant submissions/second (0 disables; default: 20)",
    )
    parser.add_argument(
        "--burst",
        type=float,
        default=40.0,
        help="per-tenant burst capacity (default: 40)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk tier for the shared compile/embedding caches",
    )
    parser.add_argument(
        "--topology",
        default="chimera",
        help="hardware family for dwave/shard jobs (default: chimera)",
    )
    parser.add_argument(
        "--topology-size",
        type=int,
        default=None,
        metavar="M",
        help="grid parameter for --topology (default: family flagship)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        help=(
            "directory for the write-ahead job journal; acknowledged jobs "
            "survive crashes/restarts and are replayed on startup"
        ),
    )
    recover = parser.add_mutually_exclusive_group()
    recover.add_argument(
        "--recover",
        dest="recover",
        action="store_true",
        default=True,
        help="replay the journal on startup (default with --state-dir)",
    )
    recover.add_argument(
        "--no-recover",
        dest="recover",
        action="store_false",
        help="skip journal replay (new jobs are still journaled)",
    )
    return parser


class _GracefulSignal(Exception):
    """Raised out of ``serve_forever`` by the SIGTERM handler."""


def _sigterm_handler(signum, frame):  # pragma: no cover - signal path
    raise _GracefulSignal()


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro serve ...``.

    Blocks until SIGINT (^C) or SIGTERM -- both take the same
    drain-and-flush path, so a container stop (docker/k8s sends
    SIGTERM) is exactly as graceful as an interactive ^C: in-flight
    jobs finish, the journal is flushed, and the exit code reports
    whether the wind-down was clean.
    """
    args = build_serve_parser().parse_args(argv)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        rate_limit_per_s=args.rate_limit if args.rate_limit > 0 else None,
        rate_limit_burst=args.burst,
        cache_dir=args.cache_dir,
        topology=args.topology,
        topology_size=args.topology_size,
        state_dir=args.state_dir,
        recover=args.recover,
    )
    server = AnnealingServer(config)
    report = server.service.recovery_report
    if report is not None:
        print(
            f"journal replay: {report.recovered_jobs} job(s) recovered in "
            f"{report.replay_s * 1000:.0f}ms ({report.terminal_jobs} "
            f"terminal, {report.requeued_jobs} requeued, "
            f"{report.quarantined_jobs} quarantined)",
            flush=True,
        )
    print(
        f"annealing service listening on {server.url} "
        f"({config.workers} workers, queue {config.queue_size})",
        flush=True,
    )
    try:
        # Only the main thread may install handlers; embedded callers
        # (tests driving serve_main from a thread) just skip SIGTERM
        # grace and rely on explicit shutdown.
        signal.signal(signal.SIGTERM, _sigterm_handler)
    except ValueError:
        pass
    try:
        server.serve_forever()
    except (KeyboardInterrupt, _GracefulSignal) as exc:
        cause = "SIGTERM" if isinstance(exc, _GracefulSignal) else "^C"
        print(
            f"shutting down on {cause} (draining in-flight jobs, "
            "flushing journal)...",
            flush=True,
        )
        clean = server.service.shutdown(drain=True, timeout_s=30.0)
        server.server_close()
        return 0 if clean else 1
    return 0
