"""Crash-safe write-ahead job journal for the annealing service.

The service's durability contract is simple to state: **an acknowledged
job is never lost**.  A ``202 Accepted`` is only sent after the job's
``accept`` record -- including its validated request and the seed it
will run with -- has been flushed *and fsynced* to the journal under
``--state-dir``, so a crash, OOM-kill, or deploy restart at any later
instant leaves enough on stable storage to re-run the job
bit-identically (the pipeline is a pure function of the request and
seed).

The journal is an append-only JSONL file (``journal.jsonl``), one JSON
object per line, fsynced per record:

* ``accept``   -- job id, tenant, idempotency key + payload
  fingerprint, the full validated request (seed materialized), and the
  creation timestamp.  Written *before* the job is enqueued.
* ``running``  -- job id and the attempt number, written when a worker
  picks the job up.  The attempt count is how recovery distinguishes a
  job that merely lost its process from one that *kills* its process:
  two ``running`` records with no terminal means the job crashed the
  worker twice and is quarantined rather than re-looped.
* ``terminal`` -- job id, final state, and the full result/error
  payload, so a restarted server keeps answering ``GET /jobs/<id>``
  for jobs that finished before the crash.

Appends tolerate being killed mid-write: a torn final line (no
trailing newline, or truncated JSON) is skipped -- and counted -- on
replay; every *complete* line is intact because the previous append
fsynced it.  Rewrites (compaction after recovery) go through
:func:`repro.core.cache.atomic_write_bytes`, the same
temp+fsync+``os.replace`` discipline the cache disk tier and shard
checkpoints use, so the journal file itself is never torn by a crash
during compaction either.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.cache import atomic_write_bytes

logger = logging.getLogger(__name__)

#: Journal schema version, stamped on every record.
JOURNAL_VERSION = 1
JOURNAL_FILENAME = "journal.jsonl"


def _encode(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)


@dataclass
class ReplayResult:
    """Everything one journal replay learned."""

    #: Per-job ledgers in first-acceptance order.
    ledgers: "Dict[str, JobLedger]" = field(default_factory=dict)
    #: Complete records parsed.
    records: int = 0
    #: Torn/corrupt lines skipped (at most the crash-interrupted tail
    #: under normal operation; mid-file corruption is also tolerated).
    torn_records: int = 0


@dataclass
class JobLedger:
    """One job's journaled history, folded from its records."""

    job_id: str
    accept: Optional[Dict[str, Any]] = None
    #: Number of ``running`` records (= worker pickups that never
    #: reached a terminal before the process died, once recovery runs).
    attempts: int = 0
    terminal: Optional[Dict[str, Any]] = None


class JobJournal:
    """Append-only, fsync-per-record job journal under a state dir.

    Thread-safe: worker threads journal ``running``/``terminal``
    records concurrently with request threads journaling ``accept``.
    One lock serializes appends -- the fsync is the cost of the
    durability contract and dominates anyway.
    """

    def __init__(self, state_dir: str, fsync: bool = True):
        self.state_dir = state_dir
        self.fsync = fsync
        os.makedirs(state_dir, exist_ok=True)
        self.path = os.path.join(state_dir, JOURNAL_FILENAME)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        self.records_written = 0
        self.compactions = 0

    # -- appends -------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        record.setdefault("v", JOURNAL_VERSION)
        record.setdefault("ts", time.time())
        line = _encode(record) + "\n"
        with self._lock:
            if self._handle.closed:  # post-shutdown straggler: drop
                logger.debug("journal closed; dropping %s", record.get("type"))
                return
            self._handle.write(line)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self.records_written += 1

    def accept(
        self,
        job_id: str,
        tenant: str,
        request_fields: Dict[str, Any],
        created_s: float,
        idempotency_key: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        """Durably record one acceptance; must precede the HTTP 202."""
        self._append(
            {
                "type": "accept",
                "job_id": job_id,
                "tenant": tenant,
                "request": request_fields,
                "created_s": created_s,
                "key": idempotency_key,
                "fingerprint": fingerprint,
            }
        )

    def running(self, job_id: str, attempt: int) -> None:
        self._append({"type": "running", "job_id": job_id, "attempt": attempt})

    def terminal(self, job_id: str, snapshot: Dict[str, Any]) -> None:
        """Record a terminal transition with its full result payload."""
        self._append({"type": "terminal", "job_id": job_id, **snapshot})

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Flush and close (graceful drain's final step); idempotent."""
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())
                self._handle.close()

    # -- replay --------------------------------------------------------
    @staticmethod
    def replay_path(path: str) -> ReplayResult:
        """Fold a journal file into per-job ledgers (missing file: empty)."""
        result = ReplayResult()
        if not os.path.exists(path):
            return result
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                text = line.strip()
                if not text:
                    continue
                try:
                    record = json.loads(text)
                    job_id = record["job_id"]
                    kind = record["type"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    # A crash mid-append leaves at most one torn tail
                    # line; skip (and count) rather than refuse to
                    # recover every intact job before it.
                    result.torn_records += 1
                    continue
                result.records += 1
                ledger = result.ledgers.get(job_id)
                if ledger is None:
                    ledger = result.ledgers[job_id] = JobLedger(job_id=job_id)
                if kind == "accept":
                    ledger.accept = record
                elif kind == "running":
                    ledger.attempts = max(
                        ledger.attempts, int(record.get("attempt", 0))
                    )
                elif kind == "terminal":
                    ledger.terminal = record
        return result

    def replay(self) -> ReplayResult:
        return self.replay_path(self.path)

    # -- compaction ----------------------------------------------------
    def compact(self, entries: List[Tuple[Dict[str, Any], Optional[Dict[str, Any]]]]) -> None:
        """Atomically rewrite the journal to the given (accept, terminal) pairs.

        Called after a recovery pass with the jobs actually retained in
        the store, so the journal stays bounded across restarts instead
        of accreting every job the server ever saw.  The rewrite goes
        through :func:`atomic_write_bytes`: a crash during compaction
        leaves either the old journal or the new one, never a torn
        file.
        """
        lines: List[str] = []
        for accept_record, terminal_record in entries:
            lines.append(_encode(accept_record))
            if terminal_record is not None:
                lines.append(_encode(terminal_record))
        data = ("\n".join(lines) + "\n" if lines else "").encode("utf-8")
        with self._lock:
            atomic_write_bytes(self.path, data)
            if not self._handle.closed:
                self._handle.close()
            self._handle = open(self.path, "a", encoding="utf-8")
            self.compactions += 1
