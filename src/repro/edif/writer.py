"""Netlist -> EDIF serialization, in the style Yosys emits.

The output contains an ``external`` library declaring the standard-cell
interfaces, a ``library`` holding the design cell with its interface and
contents (instances + joined nets), and a ``design`` stanza naming the
top cell.  Identifiers that are not legal EDIF names are emitted with
the standard ``(rename safe "original")`` form, and multi-bit ports use
``(array name width)`` with ``(member name index)`` references, matching
Yosys conventions.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.ising.cells import CELL_LIBRARY
from repro.edif.sexp import SExp, Symbol, format_sexp
from repro.synth.netlist import CONSTANT_CELLS, Net, Netlist

_SAFE_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_]*$")


def _sym(text: str) -> Symbol:
    return Symbol(text)


def _name(identifier: str) -> SExp:
    """A bare symbol if legal, else ``(rename safe "original")``."""
    if _SAFE_RE.match(identifier):
        return _sym(identifier)
    safe = re.sub(r"[^A-Za-z0-9_]", "_", identifier)
    if not safe or not safe[0].isalpha():
        safe = "id_" + safe
    return [_sym("rename"), _sym(safe), identifier]


def _cell_interface(kind: str) -> SExp:
    ports: List[SExp] = []
    if kind in CONSTANT_CELLS:
        ports.append([_sym("port"), _sym("Y"), [_sym("direction"), _sym("OUTPUT")]])
    else:
        spec = CELL_LIBRARY[kind]
        ports.append(
            [_sym("port"), _sym(spec.output), [_sym("direction"), _sym("OUTPUT")]]
        )
        for port in spec.inputs:
            ports.append(
                [_sym("port"), _sym(port), [_sym("direction"), _sym("INPUT")]]
            )
    return [
        _sym("cell"),
        _sym(kind),
        [_sym("cellType"), _sym("GENERIC")],
        [
            _sym("view"),
            _sym("VIEW_NETLIST"),
            [_sym("viewType"), _sym("NETLIST")],
            [_sym("interface")] + ports,
        ],
    ]


def write_edif(netlist: Netlist) -> str:
    """Serialize a gate-level netlist as an EDIF 2.0.0 document."""
    used_kinds = sorted({cell.kind for cell in netlist.cells.values()})

    interface: List[SExp] = [_sym("interface")]
    for port in netlist.ports.values():
        direction = [_sym("direction"), _sym(port.direction.value.upper())]
        if port.width == 1:
            interface.append([_sym("port"), _name(port.name), direction])
        else:
            interface.append(
                [
                    _sym("port"),
                    [_sym("array"), _name(port.name), port.width],
                    direction,
                ]
            )

    contents: List[SExp] = [_sym("contents")]
    for cell in netlist.cells.values():
        contents.append(
            [
                _sym("instance"),
                _name(cell.name),
                [
                    _sym("viewRef"),
                    _sym("VIEW_NETLIST"),
                    [_sym("cellRef"), _sym(cell.kind), [_sym("libraryRef"), _sym("LIB")]],
                ],
            ]
        )

    for net, joined in _net_connections(netlist).items():
        refs: List[SExp] = []
        for instance, port, bit in joined:
            if bit is None:
                port_ref: SExp = _sym(port) if _SAFE_RE.match(port) else _name(port)
            else:
                port_ref = [_sym("member"), _name(port), bit]
            if instance is None:
                refs.append([_sym("portRef"), port_ref])
            else:
                refs.append(
                    [_sym("portRef"), port_ref, [_sym("instanceRef"), _name(instance)]]
                )
        contents.append(
            [_sym("net"), _name(f"net_{net}"), [_sym("joined")] + refs]
        )

    document: SExp = [
        _sym("edif"),
        _name(netlist.name),
        [_sym("edifVersion"), 2, 0, 0],
        [_sym("edifLevel"), 0],
        [_sym("keywordMap"), [_sym("keywordLevel"), 0]],
        [
            _sym("external"),
            _sym("LIB"),
            [_sym("edifLevel"), 0],
            [_sym("technology"), [_sym("numberDefinition")]],
        ]
        + [_cell_interface(kind) for kind in used_kinds],
        [
            _sym("library"),
            _sym("DESIGN"),
            [_sym("edifLevel"), 0],
            [_sym("technology"), [_sym("numberDefinition")]],
            [
                _sym("cell"),
                _name(netlist.name),
                [_sym("cellType"), _sym("GENERIC")],
                [
                    _sym("view"),
                    _sym("VIEW_NETLIST"),
                    [_sym("viewType"), _sym("NETLIST")],
                    interface,
                    contents,
                ],
            ],
        ],
        [
            _sym("design"),
            _name(netlist.name),
            [_sym("cellRef"), _name(netlist.name), [_sym("libraryRef"), _sym("DESIGN")]],
        ],
    ]
    return format_sexp(document) + "\n"


def _net_connections(netlist: Netlist):
    """Group every (instance, port[, bit]) endpoint by net.

    Endpoints with ``instance None`` are module-level port bits; their
    ``bit`` is None for scalar ports.
    """
    joined: Dict[Net, List[Tuple]] = {}
    for port in netlist.ports.values():
        for i, net in enumerate(port.bits):
            bit = None if port.width == 1 else i
            joined.setdefault(net, []).append((None, port.name, bit))
    for cell in netlist.cells.values():
        for port_name, net in cell.connections.items():
            joined.setdefault(net, []).append((cell.name, port_name, None))
    # Nets with a single endpoint still appear (dangling), matching Yosys.
    return dict(sorted(joined.items()))
