"""EDIF netlist interchange (Section 4.2).

The paper instructs Yosys to emit EDIF (Electronic Design Interchange
Format), "a single, large s-expression, which makes it easy to parse
mechanically", and edif2qmasm consumes it.  This package provides the
same interchange point: :func:`write_edif` serializes a netlist the way
Yosys does (external cell library, interface, instances, joined nets)
and :func:`read_edif` parses it back, so the downstream translator is
decoupled from the synthesizer exactly as in the paper's toolchain.
"""

from repro.edif.sexp import SExp, Symbol, parse_sexp, format_sexp, SExpError
from repro.edif.writer import write_edif
from repro.edif.reader import read_edif, EdifError

__all__ = [
    "SExp",
    "Symbol",
    "SExpError",
    "parse_sexp",
    "format_sexp",
    "write_edif",
    "read_edif",
    "EdifError",
]
