"""EDIF -> netlist parsing (the front half of edif2qmasm).

Accepts the documents produced by :mod:`repro.edif.writer` (and, by
construction, the same structural subset Yosys emits): external cell
libraries, ``(rename ...)`` identifiers, scalar and ``(array ...)``
ports with ``(member ...)`` references, instances, and joined nets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ising.cells import CELL_LIBRARY
from repro.edif.sexp import SExp, Symbol, parse_sexp
from repro.synth.netlist import CONSTANT_CELLS, Netlist, PortDirection


class EdifError(Exception):
    """Structurally invalid or unsupported EDIF."""


def _is_form(expr: SExp, keyword: str) -> bool:
    return (
        isinstance(expr, list)
        and bool(expr)
        and isinstance(expr[0], Symbol)
        and str(expr[0]).lower() == keyword.lower()
    )


def _find_all(expr: List[SExp], keyword: str) -> List[List[SExp]]:
    return [item for item in expr if _is_form(item, keyword)]


def _find_one(expr: List[SExp], keyword: str) -> List[SExp]:
    matches = _find_all(expr, keyword)
    if len(matches) != 1:
        raise EdifError(f"expected exactly one ({keyword} ...), found {len(matches)}")
    return matches[0]


def _identifier(expr: SExp) -> str:
    """A name, resolving ``(rename safe "original")`` to the original."""
    if isinstance(expr, Symbol):
        return str(expr)
    if _is_form(expr, "rename"):
        if len(expr) != 3 or not isinstance(expr[2], str):
            raise EdifError(f"malformed rename: {expr!r}")
        return expr[2]
    raise EdifError(f"not an identifier: {expr!r}")


def read_edif(text: str) -> Netlist:
    """Parse an EDIF document into a gate-level netlist."""
    document = parse_sexp(text)
    if not _is_form(document, "edif"):
        raise EdifError("document is not an (edif ...) form")

    design = _find_one(document, "design")
    cell_ref = _find_one(design, "cellRef")
    top_name = _identifier(cell_ref[1])

    top_cell = None
    for library in _find_all(document, "library"):
        for cell in _find_all(library, "cell"):
            if _identifier(cell[1]) == top_name:
                top_cell = cell
    if top_cell is None:
        raise EdifError(f"design cell {top_name!r} not found in any library")

    view = _find_one(top_cell, "view")
    interface = _find_one(view, "interface")
    contents = _find_one(view, "contents")

    netlist = Netlist(top_name)

    # Ports.
    port_bits: Dict[str, List[int]] = {}
    port_dirs: Dict[str, PortDirection] = {}
    for port in _find_all(interface, "port"):
        spec = port[1]
        if _is_form(spec, "array"):
            name = _identifier(spec[1])
            width = int(spec[2])
        else:
            name = _identifier(spec)
            width = 1
        direction_form = _find_one(port, "direction")
        direction = (
            PortDirection.INPUT
            if str(direction_form[1]).upper() == "INPUT"
            else PortDirection.OUTPUT
        )
        port_bits[name] = netlist.new_nets(width)
        port_dirs[name] = direction

    # Instances.
    instance_kind: Dict[str, str] = {}
    for instance in _find_all(contents, "instance"):
        name = _identifier(instance[1])
        view_ref = _find_one(instance, "viewRef")
        kind = _identifier(_find_one(view_ref, "cellRef")[1])
        if kind not in CELL_LIBRARY and kind not in CONSTANT_CELLS:
            raise EdifError(f"instance {name!r} has unknown cell type {kind!r}")
        instance_kind[name] = kind

    # Nets: each (net ... (joined portRef...)) merges its endpoints.
    connections: Dict[str, Dict[str, int]] = {name: {} for name in instance_kind}
    merged: Dict[int, int] = {}  # module port bits joined onto one net

    def resolve(net: int) -> int:
        while net in merged:
            net = merged[net]
        return net

    for net_form in _find_all(contents, "net"):
        joined = _find_one(net_form, "joined")
        endpoints = _find_all(joined, "portRef")
        if not endpoints:
            continue
        net_id: Optional[int] = None
        module_refs: List[Tuple[str, Optional[int]]] = []
        instance_refs: List[Tuple[str, str]] = []
        for ref in endpoints:
            port_spec = ref[1]
            if _is_form(port_spec, "member"):
                port_name = _identifier(port_spec[1])
                bit = int(port_spec[2])
            else:
                port_name = _identifier(port_spec)
                bit = None
            inst_forms = _find_all(ref, "instanceRef")
            if inst_forms:
                instance_refs.append((_identifier(inst_forms[0][1]), port_name))
            else:
                module_refs.append((port_name, bit))
        # Module port bits own their pre-created nets; if one EDIF net
        # joins several module port bits (e.g. assign out = in), merge.
        for port_name, bit in module_refs:
            if port_name not in port_bits:
                raise EdifError(f"net references unknown port {port_name!r}")
            index = 0 if bit is None else bit
            candidate = resolve(port_bits[port_name][index])
            if net_id is None:
                net_id = candidate
            elif net_id != candidate:
                merged[candidate] = net_id
        if net_id is None:
            net_id = netlist.new_net()
        for inst_name, port_name in instance_refs:
            if inst_name not in connections:
                raise EdifError(f"net references unknown instance {inst_name!r}")
            if port_name in connections[inst_name]:
                raise EdifError(
                    f"port {port_name!r} of {inst_name!r} joined twice"
                )
            connections[inst_name][port_name] = net_id

    for name, kind in instance_kind.items():
        netlist.add_cell(
            kind, {p: resolve(n) for p, n in connections[name].items()}, name=name
        )

    for name, bits in port_bits.items():
        netlist.add_port(name, port_dirs[name], [resolve(n) for n in bits])

    netlist.validate()
    return netlist
