"""S-expression reading and writing.

EDIF is one large s-expression (the paper cites Rivest's s-expression
note).  We need symbols, integers, and double-quoted strings; lists are
Python lists.
"""

from __future__ import annotations

from typing import List, Union


class SExpError(Exception):
    """Malformed s-expression input."""


class Symbol(str):
    """A bare identifier, distinct from a quoted string."""

    __slots__ = ()

    def __repr__(self) -> str:
        return f"Symbol({str.__repr__(self)})"


SExp = Union[Symbol, str, int, List["SExp"]]


def parse_sexp(text: str) -> SExp:
    """Parse a single s-expression from ``text``."""
    tokens = _tokenize(text)
    if not tokens:
        raise SExpError("empty input")
    expr, index = _parse(tokens, 0)
    if index != len(tokens):
        raise SExpError(f"trailing tokens after expression: {tokens[index:][:5]}")
    return expr


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
        elif ch in "()":
            tokens.append(ch)
            i += 1
        elif ch == '"':
            j = i + 1
            while j < length and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            if j >= length:
                raise SExpError("unterminated string")
            tokens.append(text[i:j + 1])
            i = j + 1
        else:
            j = i
            while j < length and text[j] not in ' \t\r\n()"':
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def _parse(tokens: List[str], index: int):
    token = tokens[index]
    if token == "(":
        items: List[SExp] = []
        index += 1
        while index < len(tokens) and tokens[index] != ")":
            item, index = _parse(tokens, index)
            items.append(item)
        if index >= len(tokens):
            raise SExpError("unbalanced parentheses")
        return items, index + 1
    if token == ")":
        raise SExpError("unexpected ')'")
    return _atom(token), index + 1


def _atom(token: str) -> SExp:
    if token.startswith('"'):
        return token[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    try:
        return int(token)
    except ValueError:
        return Symbol(token)


def format_sexp(expr: SExp, indent: int = 0, width: int = 100) -> str:
    """Pretty-print an s-expression with line breaks for long lists."""
    flat = _format_flat(expr)
    if len(flat) + indent <= width or not isinstance(expr, list):
        return flat
    head = _format_flat(expr[0]) if expr else ""
    lines = ["(" + head]
    pad = " " * (indent + 2)
    for item in expr[1:]:
        lines.append(pad + format_sexp(item, indent + 2, width))
    return "\n".join(lines) + "\n" + " " * indent + ")"


def _format_flat(expr: SExp) -> str:
    if isinstance(expr, list):
        return "(" + " ".join(_format_flat(e) for e in expr) + ")"
    if isinstance(expr, Symbol):
        return str(expr)
    if isinstance(expr, str):
        escaped = expr.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return str(expr)
