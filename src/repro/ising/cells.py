"""The paper's Table 5: a standard-cell library as gate Hamiltonians.

Each entry maps a logic cell (the default ABC cell set the paper
targets) to a quadratic pseudo-Boolean function that is minimized
exactly on the valid rows of the cell's truth table.  The coefficient
choices are those printed in the paper, which were selected to honor the
hardware coefficient ranges while maximizing the energy gap between
valid and invalid rows.

Cells with 2-input XOR-like structure (XOR, XNOR, MUX, AOI*, OAI*) need
one or two ancilla variables, named ``$anc1``/``$anc2`` here; the ``$``
prefix marks them "uninteresting" in QMASM's output convention.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

from repro.ising.model import SPIN_FALSE, SPIN_TRUE, IsingModel


@dataclass(frozen=True)
class CellSpec:
    """One standard cell: its logic and its Hamiltonian.

    Attributes:
        name: cell name as it appears in netlists (e.g. ``"AND"``).
        inputs: ordered input port names.
        output: output port name (``"Y"``, or ``"Q"`` for flip-flops).
        function: the Boolean function, taking input values in port order.
        linear / quadratic: the Hamiltonian coefficients over port and
            ancilla names.
        ancillas: ancilla variable names used by the Hamiltonian.
        is_sequential: True for flip-flops (handled by time unrolling,
            Section 4.3.3).
    """

    name: str
    inputs: Tuple[str, ...]
    output: str
    function: Callable[..., bool]
    linear: Mapping[str, float]
    quadratic: Mapping[Tuple[str, str], float]
    ancillas: Tuple[str, ...] = ()
    is_sequential: bool = False

    @property
    def ports(self) -> Tuple[str, ...]:
        return (self.output,) + self.inputs

    def hamiltonian(self) -> IsingModel:
        """The cell's Hamiltonian over its own port/ancilla names."""
        model = IsingModel()
        for port in self.ports + self.ancillas:
            model.add_variable(port, 0.0)
        for var, bias in self.linear.items():
            model.add_variable(var, bias)
        for (u, v), coupling in self.quadratic.items():
            model.add_interaction(u, v, coupling)
        return model

    def valid_rows(self) -> List[Tuple[int, ...]]:
        """Truth-table rows ``(output, *inputs)`` as spins."""
        rows = []
        for bits in itertools.product((False, True), repeat=len(self.inputs)):
            out = bool(self.function(*bits))
            rows.append(
                tuple(
                    SPIN_TRUE if b else SPIN_FALSE for b in (out,) + bits
                )
            )
        return rows

    def verify(self, tol: float = 1e-9) -> bool:
        """Exhaustively check ground states == valid truth-table rows."""
        model = self.hamiltonian()
        _, states = model.ground_states(tol=tol)
        ports = self.ports
        observed = {tuple(s[p] for p in ports) for s in states}
        return observed == set(self.valid_rows())


def _mux(s: bool, a: bool, b: bool) -> bool:
    """Table 5's 2:1 MUX: Y = (S AND B) OR (NOT S AND A)."""
    return b if s else a


THIRD = 1.0 / 3.0
TWELFTH = 1.0 / 12.0

#: Table 5, transcribed.  Quadratic keys are (row-variable, col-variable)
#: exactly as printed; IsingModel canonicalizes the pair order.
CELL_LIBRARY: Dict[str, CellSpec] = {}


def _register(spec: CellSpec) -> None:
    CELL_LIBRARY[spec.name] = spec


_register(
    CellSpec(
        name="NOT",
        inputs=("A",),
        output="Y",
        function=lambda a: not a,
        linear={},
        quadratic={("A", "Y"): 1.0},
    )
)

_register(
    CellSpec(
        name="AND",
        inputs=("A", "B"),
        output="Y",
        function=lambda a, b: a and b,
        linear={"A": -0.5, "B": -0.5, "Y": 1.0},
        quadratic={("A", "B"): 0.5, ("A", "Y"): -1.0, ("B", "Y"): -1.0},
    )
)

_register(
    CellSpec(
        name="OR",
        inputs=("A", "B"),
        output="Y",
        function=lambda a, b: a or b,
        linear={"A": 0.5, "B": 0.5, "Y": -1.0},
        quadratic={("A", "B"): 0.5, ("A", "Y"): -1.0, ("B", "Y"): -1.0},
    )
)

_register(
    CellSpec(
        name="NAND",
        inputs=("A", "B"),
        output="Y",
        function=lambda a, b: not (a and b),
        linear={"A": -0.5, "B": -0.5, "Y": -1.0},
        quadratic={("A", "B"): 0.5, ("A", "Y"): 1.0, ("B", "Y"): 1.0},
    )
)

_register(
    CellSpec(
        name="NOR",
        inputs=("A", "B"),
        output="Y",
        function=lambda a, b: not (a or b),
        linear={"A": 0.5, "B": 0.5, "Y": 1.0},
        quadratic={("A", "B"): 0.5, ("A", "Y"): 1.0, ("B", "Y"): 1.0},
    )
)

_register(
    CellSpec(
        name="XOR",
        inputs=("A", "B"),
        output="Y",
        function=lambda a, b: a != b,
        linear={"A": 0.5, "B": -0.5, "Y": -0.5, "$anc1": 1.0},
        quadratic={
            ("A", "B"): -0.5,
            ("A", "Y"): -0.5,
            ("A", "$anc1"): 1.0,
            ("B", "Y"): 0.5,
            ("B", "$anc1"): -1.0,
            ("Y", "$anc1"): -1.0,
        },
        ancillas=("$anc1",),
    )
)

_register(
    CellSpec(
        name="XNOR",
        inputs=("A", "B"),
        output="Y",
        function=lambda a, b: a == b,
        linear={"A": 0.5, "B": -0.5, "Y": 0.5, "$anc1": 1.0},
        quadratic={
            ("A", "B"): -0.5,
            ("A", "Y"): 0.5,
            ("A", "$anc1"): 1.0,
            ("B", "Y"): -0.5,
            ("B", "$anc1"): -1.0,
            ("Y", "$anc1"): 1.0,
        },
        ancillas=("$anc1",),
    )
)

_register(
    CellSpec(
        name="MUX",
        inputs=("S", "A", "B"),
        output="Y",
        function=_mux,
        linear={"S": 0.5, "A": 0.25, "B": -0.25, "Y": 0.5, "$anc1": 1.0},
        quadratic={
            ("S", "A"): 0.25,
            ("S", "B"): -0.25,
            ("S", "Y"): 0.5,
            ("S", "$anc1"): 1.0,
            ("A", "B"): 0.5,
            ("A", "Y"): -0.5,
            ("A", "$anc1"): 0.5,
            ("B", "Y"): -1.0,
            ("B", "$anc1"): -0.5,
            ("Y", "$anc1"): 1.0,
        },
        ancillas=("$anc1",),
    )
)

_register(
    CellSpec(
        name="AOI3",
        inputs=("A", "B", "C"),
        output="Y",
        function=lambda a, b, c: not ((a and b) or c),
        linear={"B": -THIRD, "C": THIRD, "Y": 2 * THIRD, "$anc1": -2 * THIRD},
        quadratic={
            ("A", "B"): THIRD,
            ("A", "C"): THIRD,
            ("A", "Y"): THIRD,
            ("A", "$anc1"): THIRD,
            ("B", "Y"): -THIRD,
            ("B", "$anc1"): 1.0,
            ("C", "Y"): 1.0,
            ("C", "$anc1"): -THIRD,
            ("Y", "$anc1"): -1.0,
        },
        ancillas=("$anc1",),
    )
)

_register(
    CellSpec(
        name="OAI3",
        inputs=("A", "B", "C"),
        output="Y",
        function=lambda a, b, c: not ((a or b) and c),
        linear={"A": -0.25, "C": -0.75, "Y": -0.5, "$anc1": -0.5},
        quadratic={
            ("A", "C"): 0.75,
            ("A", "Y"): 0.5,
            ("A", "$anc1"): 0.5,
            ("B", "Y"): 0.25,
            ("B", "$anc1"): -0.25,
            ("C", "Y"): 1.0,
            ("C", "$anc1"): 1.0,
            ("Y", "$anc1"): 0.25,
        },
        ancillas=("$anc1",),
    )
)

_register(
    CellSpec(
        name="AOI4",
        inputs=("A", "B", "C", "D"),
        output="Y",
        function=lambda a, b, c, d: not ((a and b) or (c and d)),
        linear={
            "A": -2 * TWELFTH,
            "B": -2 * TWELFTH,
            "C": -5 * TWELFTH,
            "D": 3 * TWELFTH,
            "Y": -5 * TWELFTH,
            "$anc1": -7 * TWELFTH,
            "$anc2": 2 * TWELFTH,
        },
        quadratic={
            ("A", "B"): 2 * TWELFTH,
            ("A", "C"): 4 * TWELFTH,
            ("A", "D"): -TWELFTH,
            ("A", "Y"): 6 * TWELFTH,
            ("A", "$anc1"): 4 * TWELFTH,
            ("A", "$anc2"): -3 * TWELFTH,
            ("B", "C"): 4 * TWELFTH,
            ("B", "D"): -TWELFTH,
            ("B", "Y"): 6 * TWELFTH,
            ("B", "$anc1"): 4 * TWELFTH,
            ("B", "$anc2"): -3 * TWELFTH,
            ("C", "D"): -4 * TWELFTH,
            ("C", "Y"): 11 * TWELFTH,
            ("C", "$anc1"): 11 * TWELFTH,
            ("C", "$anc2"): -5 * TWELFTH,
            ("D", "Y"): -4 * TWELFTH,
            ("D", "$anc1"): -7 * TWELFTH,
            ("D", "$anc2"): 4 * TWELFTH,
            ("Y", "$anc1"): 1.0,
            ("Y", "$anc2"): -8 * TWELFTH,
            ("$anc1", "$anc2"): -7 * TWELFTH,
        },
        ancillas=("$anc1", "$anc2"),
    )
)

_register(
    CellSpec(
        name="OAI4",
        inputs=("A", "B", "C", "D"),
        output="Y",
        function=lambda a, b, c, d: not ((a or b) and (c or d)),
        linear={
            "A": 2 * THIRD,
            "B": -THIRD,
            "C": -THIRD,
            "D": -THIRD,
            "Y": -THIRD,
            "$anc1": -1.0,
            "$anc2": -1.0,
        },
        quadratic={
            ("A", "B"): -THIRD,
            ("A", "Y"): THIRD,
            ("A", "$anc1"): -THIRD,
            ("A", "$anc2"): -1.0,
            ("B", "$anc2"): 2 * THIRD,
            ("C", "D"): THIRD,
            ("C", "Y"): 2 * THIRD,
            ("C", "$anc1"): 2 * THIRD,
            ("D", "Y"): 2 * THIRD,
            ("D", "$anc1"): 2 * THIRD,
            ("Y", "$anc1"): 1.0,
            ("Y", "$anc2"): -THIRD,
            ("$anc1", "$anc2"): THIRD,
        },
        ancillas=("$anc1", "$anc2"),
    )
)

_register(
    CellSpec(
        name="DFF_P",
        inputs=("D",),
        output="Q",
        function=lambda d: d,
        linear={},
        quadratic={("D", "Q"): -1.0},
        is_sequential=True,
    )
)

_register(
    CellSpec(
        name="DFF_N",
        inputs=("D",),
        output="Q",
        function=lambda d: d,
        linear={},
        quadratic={("D", "Q"): -1.0},
        is_sequential=True,
    )
)


#: The chain coupling used for nets (Section 4.3.1, Table 1): H = -s_A s_Y.
CHAIN_COUPLING = -1.0

#: Pin strengths (Section 4.3.4): ground H = +s, power H = -s.
GND_BIAS = 1.0
VCC_BIAS = -1.0


def cell_hamiltonian(name: str, prefix: str = "") -> IsingModel:
    """Instantiate a cell's Hamiltonian with instance-scoped variables.

    ``cell_hamiltonian("AND", "u3.")`` returns the AND Hamiltonian over
    ``u3.Y``, ``u3.A``, ``u3.B`` -- the naming scheme QMASM's
    ``!use_macro`` produces.
    """
    spec = CELL_LIBRARY[name]
    base = spec.hamiltonian()
    if not prefix:
        return base
    return base.relabel({v: f"{prefix}{v}" for v in base.variables})


def wire_hamiltonian(a: str, b: str, strength: float = -CHAIN_COUPLING) -> IsingModel:
    """A net between two endpoints: minimized exactly when a == b (Table 1)."""
    model = IsingModel()
    model.add_interaction(a, b, -abs(strength))
    return model


def pin_hamiltonian(variable: str, value: bool, strength: float = 1.0) -> IsingModel:
    """Pin ``variable`` to a Boolean via H_VCC / H_GND (Section 4.3.4)."""
    model = IsingModel()
    bias = (VCC_BIAS if value else GND_BIAS) * abs(strength)
    model.add_variable(variable, bias)
    return model
