"""Quadratic pseudo-Boolean functions over spin variables.

The paper's Equation (2):

    H(sigma) = sum_i h_i sigma_i  +  sum_{i<j} J_ij sigma_i sigma_j

with sigma_i in {-1, +1}.  An :class:`IsingModel` stores the linear
coefficients ``h``, the quadratic coefficients ``J``, and a constant
``offset`` (the offset does not affect the argmin but lets models compose
and convert to/from QUBO form without losing energies).

Variables are arbitrary hashable labels: the QMASM layer uses strings
such as ``"my_and.A"``, the hardware layer uses integer qubit numbers.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np

Variable = Hashable
Edge = Tuple[Variable, Variable]

#: The paper represents False as -1 and True as +1 ("physics Booleans").
SPIN_FALSE = -1
SPIN_TRUE = +1


def bool_to_spin(value: bool) -> int:
    """Map a Python Boolean to the paper's {-1, +1} spin convention."""
    return SPIN_TRUE if value else SPIN_FALSE


def spin_to_bool(spin: int) -> bool:
    """Map a {-1, +1} spin back to a Python Boolean.

    Raises ``ValueError`` on anything that is not exactly +/-1, because a
    spin outside that set indicates an upstream bug (e.g. reading a QUBO
    sample as spins).
    """
    if spin == SPIN_TRUE:
        return True
    if spin == SPIN_FALSE:
        return False
    raise ValueError(f"not a spin value: {spin!r}")


def _edge(u: Variable, v: Variable) -> Edge:
    """Canonical (order-independent) key for the pair {u, v}."""
    if u == v:
        raise ValueError(f"self-coupling on variable {u!r} is not quadratic")
    # Sort by repr for a deterministic canonical order across mixed types.
    return (u, v) if repr(u) <= repr(v) else (v, u)


class IsingModel:
    """A quadratic pseudo-Boolean function H(sigma) = h.sigma + sigma.J.sigma.

    Supports incremental construction (``add_variable``,
    ``add_interaction``), composition (``update``, ``+``), evaluation
    (``energy``), exact ground-state enumeration for small models,
    variable fixing/contraction (used by chains and roof duality), and
    conversion to dense numpy arrays for the samplers.
    """

    def __init__(
        self,
        h: Optional[Mapping[Variable, float]] = None,
        j: Optional[Mapping[Edge, float]] = None,
        offset: float = 0.0,
    ):
        self._h: Dict[Variable, float] = {}
        self._j: Dict[Edge, float] = {}
        self.offset = float(offset)
        #: Cached CSR adjacency export; invalidated on any mutation of
        #: ``_h`` or ``_j`` (the offset is not part of the adjacency).
        self._csr: Optional[tuple] = None
        if h:
            for v, bias in h.items():
                self.add_variable(v, bias)
        if j:
            for (u, v), coupling in j.items():
                self.add_interaction(u, v, coupling)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._csr = None

    def add_variable(self, v: Variable, bias: float = 0.0) -> None:
        """Add ``bias`` to the linear coefficient of ``v`` (creating it)."""
        self._invalidate()
        self._h[v] = self._h.get(v, 0.0) + float(bias)

    def add_interaction(self, u: Variable, v: Variable, coupling: float) -> None:
        """Add ``coupling`` to the quadratic coefficient of the pair {u, v}."""
        edge = _edge(u, v)
        self._invalidate()
        self._h.setdefault(u, 0.0)
        self._h.setdefault(v, 0.0)
        self._j[edge] = self._j.get(edge, 0.0) + float(coupling)

    def update(self, other: "IsingModel") -> None:
        """Accumulate ``other`` into this model (Section 4.3.5: H_P + H_Q)."""
        for v, bias in other._h.items():
            self.add_variable(v, bias)
        for (u, v), coupling in other._j.items():
            self.add_interaction(u, v, coupling)
        self.offset += other.offset

    def __add__(self, other: "IsingModel") -> "IsingModel":
        out = self.copy()
        out.update(other)
        return out

    def copy(self) -> "IsingModel":
        out = IsingModel(offset=self.offset)
        out._h = dict(self._h)
        out._j = dict(self._j)
        return out

    def relabel(self, mapping: Mapping[Variable, Variable]) -> "IsingModel":
        """Return a copy with variables renamed via ``mapping``.

        Variables absent from ``mapping`` keep their labels.  If two old
        labels map to the same new label their terms merge, which is how
        QMASM contracts explicit ``A = B`` chains into one variable.
        """
        out = IsingModel(offset=self.offset)
        for v, bias in self._h.items():
            out.add_variable(mapping.get(v, v), bias)
        for (u, v), coupling in self._j.items():
            new_u = mapping.get(u, u)
            new_v = mapping.get(v, v)
            if new_u == new_v:
                # sigma * sigma == 1: the term becomes a constant.
                out.offset += coupling
            else:
                out.add_interaction(new_u, new_v, coupling)
        return out

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def variables(self) -> Iterable[Variable]:
        return self._h.keys()

    @property
    def linear(self) -> Dict[Variable, float]:
        return dict(self._h)

    @property
    def quadratic(self) -> Dict[Edge, float]:
        return dict(self._j)

    def __len__(self) -> int:
        return len(self._h)

    def __contains__(self, v: Variable) -> bool:
        return v in self._h

    def num_interactions(self) -> int:
        return len(self._j)

    def num_terms(self) -> int:
        """Count non-zero terms, the paper's Section 6.1 'terms' metric."""
        nonzero_h = sum(1 for bias in self._h.values() if bias != 0.0)
        nonzero_j = sum(1 for coupling in self._j.values() if coupling != 0.0)
        return nonzero_h + nonzero_j

    def get_linear(self, v: Variable) -> float:
        return self._h[v]

    def get_interaction(self, u: Variable, v: Variable) -> float:
        return self._j.get(_edge(u, v), 0.0)

    def degree(self, v: Variable) -> int:
        return sum(1 for edge in self._j if v in edge)

    def neighbors(self, v: Variable) -> Iterator[Variable]:
        for u, w in self._j:
            if u == v:
                yield w
            elif w == v:
                yield u

    def max_abs_linear(self) -> float:
        return max((abs(bias) for bias in self._h.values()), default=0.0)

    def max_abs_quadratic(self) -> float:
        return max((abs(coupling) for coupling in self._j.values()), default=0.0)

    def __repr__(self) -> str:
        return (
            f"IsingModel({len(self._h)} variables, "
            f"{len(self._j)} interactions, offset={self.offset:g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IsingModel):
            return NotImplemented
        return (
            self._nonzero_h() == other._nonzero_h()
            and self._nonzero_j() == other._nonzero_j()
            and math.isclose(self.offset, other.offset, abs_tol=1e-12)
        )

    def _nonzero_h(self) -> Dict[Variable, float]:
        return {v: bias for v, bias in self._h.items() if bias != 0.0}

    def _nonzero_j(self) -> Dict[Edge, float]:
        return {edge: c for edge, c in self._j.items() if c != 0.0}

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def energy(self, sample: Mapping[Variable, int]) -> float:
        """Evaluate H at a full spin assignment (values in {-1, +1})."""
        total = self.offset
        for v, bias in self._h.items():
            total += bias * sample[v]
        for (u, v), coupling in self._j.items():
            total += coupling * sample[u] * sample[v]
        return total

    def energy_bool(self, sample: Mapping[Variable, bool]) -> float:
        """Evaluate H at a Boolean assignment via the spin convention."""
        return self.energy({v: bool_to_spin(bool(b)) for v, b in sample.items()})

    # ------------------------------------------------------------------
    # Dense form (for vectorized samplers)
    # ------------------------------------------------------------------
    def to_arrays(self) -> Tuple[list, np.ndarray, np.ndarray]:
        """Return ``(variable_order, h_vector, J_matrix)``.

        ``J_matrix`` is symmetric with each coupling split evenly across
        (i, j) and (j, i); samplers compute ``s @ J @ s / 1`` using only the
        upper triangle or use the local-field trick ``2 * J @ s``.
        """
        order = list(self._h)
        index = {v: i for i, v in enumerate(order)}
        h_vec = np.array([self._h[v] for v in order], dtype=float)
        j_mat = np.zeros((len(order), len(order)), dtype=float)
        for (u, v), coupling in self._j.items():
            i, j = index[u], index[v]
            j_mat[i, j] += coupling
            j_mat[j, i] += coupling
        return order, h_vec, j_mat

    # ------------------------------------------------------------------
    # Sparse form (for the sweep kernels)
    # ------------------------------------------------------------------
    def to_csr(self) -> Tuple[list, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(order, h, indptr, indices, data)``: CSR adjacency.

        The symmetric coupling matrix in compressed-sparse-row form:
        variable ``order[i]``'s neighbors are ``indices[indptr[i]:
        indptr[i+1]]`` with couplings ``data[indptr[i]:indptr[i+1]]``,
        column indices sorted ascending.  Zero couplings are dropped, so
        on hardware-topology models (Chimera degree <= 6) this is the
        O(nnz) structure the sparse sweep kernels in
        :mod:`repro.solvers.kernels` iterate over instead of the O(n^2)
        dense matrix.

        The export is cached on the model and invalidated by any
        coefficient mutation (``add_variable``, ``add_interaction``,
        ``update``).  The returned arrays are marked read-only because
        they are shared with the cache; copy before mutating.
        """
        if self._csr is not None:
            return self._csr
        order = list(self._h)
        index = {v: i for i, v in enumerate(order)}
        n = len(order)
        h_vec = np.array([self._h[v] for v in order], dtype=float)
        neighbors: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        for (u, v), coupling in self._j.items():
            if coupling == 0.0:
                continue
            i, j = index[u], index[v]
            neighbors[i].append((j, coupling))
            neighbors[j].append((i, coupling))
        indptr = np.zeros(n + 1, dtype=np.int64)
        for i, adj in enumerate(neighbors):
            adj.sort()
            indptr[i + 1] = indptr[i] + len(adj)
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=float)
        for i, adj in enumerate(neighbors):
            start = indptr[i]
            for k, (j, coupling) in enumerate(adj):
                indices[start + k] = j
                data[start + k] = coupling
        for array in (h_vec, indptr, indices, data):
            array.setflags(write=False)
        self._csr = (order, h_vec, indptr, indices, data)
        return self._csr

    def energies(self, samples: np.ndarray, order: Optional[list] = None) -> np.ndarray:
        """Vectorized energy of ``samples`` (n_samples x n_variables spins)."""
        from repro.solvers import kernels

        csr_order, h_vec, indptr, indices, data = self.to_csr()
        if order is not None:
            if list(order) != csr_order:
                perm = [list(order).index(v) for v in csr_order]
                samples = samples[:, perm]
        return kernels.batched_energies(
            h_vec, indptr, indices, data, samples, self.offset
        )

    # ------------------------------------------------------------------
    # Exact solutions (small models only)
    # ------------------------------------------------------------------
    def ground_states(self, tol: float = 1e-9) -> Tuple[float, list]:
        """Exhaustively find all minimizing spin assignments.

        Returns ``(minimum_energy, [sample, ...])``.  Exponential in the
        variable count; intended for verifying gate Hamiltonians and for
        tests (the cell library tops out at 6 variables).
        """
        order = list(self._h)
        if len(order) > 24:
            raise ValueError(
                f"refusing exhaustive enumeration over {len(order)} variables"
            )
        best_energy = math.inf
        best: list = []
        for bits in itertools.product((SPIN_FALSE, SPIN_TRUE), repeat=len(order)):
            sample = dict(zip(order, bits))
            e = self.energy(sample)
            if e < best_energy - tol:
                best_energy = e
                best = [sample]
            elif abs(e - best_energy) <= tol:
                best.append(sample)
        return best_energy, best

    # ------------------------------------------------------------------
    # Variable elimination
    # ------------------------------------------------------------------
    def fix_variable(self, v: Variable, spin: int) -> "IsingModel":
        """Return a copy with ``v`` fixed to ``spin`` and eliminated.

        Used both for pinning program inputs/outputs (Section 4.3.6 is
        instead expressed as a strong bias, but roof duality uses true
        elimination) and for decomposition solvers.
        """
        if spin not in (SPIN_FALSE, SPIN_TRUE):
            raise ValueError(f"spin must be +/-1, got {spin!r}")
        if v not in self._h:
            raise KeyError(f"unknown variable {v!r}")
        out = IsingModel(offset=self.offset + self._h[v] * spin)
        for u, bias in self._h.items():
            if u != v:
                out.add_variable(u, bias)
        for (a, b), coupling in self._j.items():
            if a == v:
                out.add_variable(b, coupling * spin)
            elif b == v:
                out.add_variable(a, coupling * spin)
            else:
                out.add_interaction(a, b, coupling)
        return out

    def contract(self, keep: Variable, remove: Variable, same_sign: bool = True) -> "IsingModel":
        """Merge ``remove`` into ``keep`` (equal or opposite value).

        This is QMASM's handling of explicit ``A = B`` / ``A /= B``
        statements (Section 4.4): rather than spending a coupler, the two
        logical variables become one.
        """
        if keep == remove:
            raise ValueError("cannot contract a variable with itself")
        out = IsingModel(offset=self.offset)
        sign = 1.0 if same_sign else -1.0
        for v, bias in self._h.items():
            if v == remove:
                out.add_variable(keep, sign * bias)
            else:
                out.add_variable(v, bias)
        for (u, v), coupling in self._j.items():
            new_u = keep if u == remove else u
            new_v = keep if v == remove else v
            factor = coupling
            if u == remove or v == remove:
                factor = sign * coupling
            if new_u == new_v:
                out.offset += factor
            else:
                out.add_interaction(new_u, new_v, factor)
        return out

    # ------------------------------------------------------------------
    # QUBO conversion
    # ------------------------------------------------------------------
    def to_qubo(self) -> Tuple[Dict[Edge, float], float]:
        """Convert to QUBO form: minimize x.Q.x over x in {0,1}^N.

        Uses sigma = 2x - 1.  Returns ``(Q, offset)`` with diagonal terms
        stored under ``(v, v)`` keys.
        """
        q: Dict[Edge, float] = {}
        offset = self.offset
        for v, bias in self._h.items():
            q[(v, v)] = q.get((v, v), 0.0) + 2.0 * bias
            offset -= bias
        for (u, v), coupling in self._j.items():
            q[_edge(u, v)] = q.get(_edge(u, v), 0.0) + 4.0 * coupling
            q[(u, u)] = q.get((u, u), 0.0) - 2.0 * coupling
            q[(v, v)] = q.get((v, v), 0.0) - 2.0 * coupling
            offset += coupling
        return q, offset

    @classmethod
    def from_qubo(cls, q: Mapping[Edge, float], offset: float = 0.0) -> "IsingModel":
        """Build an Ising model from QUBO coefficients (x = (sigma + 1)/2)."""
        model = cls(offset=offset)
        for (u, v), coeff in q.items():
            if u == v:
                model.add_variable(u, coeff / 2.0)
                model.offset += coeff / 2.0
            else:
                model.add_interaction(u, v, coeff / 4.0)
                model.add_variable(u, coeff / 4.0)
                model.add_variable(v, coeff / 4.0)
                model.offset += coeff / 4.0
        return model

    # ------------------------------------------------------------------
    # Scaling
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "IsingModel":
        """Return a copy with every coefficient multiplied by ``factor``."""
        out = IsingModel(offset=self.offset * factor)
        out._h = {v: bias * factor for v, bias in self._h.items()}
        out._j = {edge: c * factor for edge, c in self._j.items()}
        return out
