"""Roof-duality variable fixing (Section 4.4's qubit elision).

qmasm uses SAPI's roof-duality implementation (Hammer, Hansen & Simeone,
1984) to elide qubits whose value in an optimal solution can be
determined a priori.  We reproduce that presolve step with two layers:

1. ``fix_variables_local``: the sound "dominated local field" rule --
   if |h_i| exceeds the total magnitude of i's couplings, sigma_i must
   take the sign that pays for h_i in every optimum.  Iterated to a
   fixpoint so fixings cascade.

2. ``fix_variables_roof``: full roof duality via the Boros-Hammer
   implication network.  The QUBO is rewritten as a posiform (all
   positive coefficients over literals), turned into a flow network in
   which each term a*u*v contributes arcs u -> not(v) and v -> not(u) of
   capacity a/2, and a max-flow from the TRUE literal x0 to its negation
   is computed.  Literals reachable from x0 in the residual network are
   1 in some optimal solution (weak persistency), which is exactly the
   guarantee a presolver needs.

``fix_variables`` runs both and merges the results.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import networkx as nx

from repro.ising.model import SPIN_FALSE, SPIN_TRUE, IsingModel

Variable = Hashable


def fix_variables_local(model: IsingModel) -> Dict[Variable, int]:
    """Fix spins whose local field dominates their couplings.

    If |h_i| > sum_j |J_ij| then in any optimum sigma_i = -sign(h_i):
    flipping i to align against h_i costs more than the couplings could
    ever repay.  Fixing one variable folds its couplings into its
    neighbors' fields, so we iterate until no more variables qualify.
    """
    work = model.copy()
    fixed: Dict[Variable, int] = {}
    changed = True
    while changed:
        changed = False
        coupling_weight: Dict[Variable, float] = {v: 0.0 for v in work.variables}
        for (u, v), coupling in work.quadratic.items():
            coupling_weight[u] += abs(coupling)
            coupling_weight[v] += abs(coupling)
        for v, bias in list(work.linear.items()):
            if abs(bias) > coupling_weight[v] and bias != 0.0:
                spin = SPIN_FALSE if bias > 0 else SPIN_TRUE
                fixed[v] = spin
                work = work.fix_variable(v, spin)
                changed = True
                break
        # Also fix isolated zero-field variables arbitrarily?  No: both
        # values are optimal, but callers may care which, so leave them.
    return fixed


def _posiform(model: IsingModel):
    """Rewrite the model's QUBO as a posiform over literals.

    A literal is ``(variable, polarity)`` with polarity True for x and
    False for x-bar.  Returns ``(linear_terms, quadratic_terms)`` where
    every coefficient is strictly positive.
    """
    qubo, _ = model.to_qubo()
    linear: Dict[Tuple[Variable, bool], float] = {}
    quadratic: Dict[Tuple[Tuple[Variable, bool], Tuple[Variable, bool]], float] = {}

    def add_linear(var: Variable, coeff: float) -> None:
        if coeff > 0:
            key = (var, True)
        elif coeff < 0:
            # c*x = c + |c|*(1-x) = c + |c|*xbar
            key = (var, False)
            coeff = -coeff
        else:
            return
        linear[key] = linear.get(key, 0.0) + coeff

    for (u, v), coeff in qubo.items():
        if coeff == 0.0:
            continue
        if u == v:
            add_linear(u, coeff)
        elif coeff > 0:
            key = ((u, True), (v, True))
            quadratic[key] = quadratic.get(key, 0.0) + coeff
        else:
            # c*x*y (c<0) = c*x + |c|*x*ybar
            add_linear(u, coeff)
            key = ((u, True), (v, False))
            quadratic[key] = quadratic.get(key, 0.0) - coeff
    return linear, quadratic


_TRUE = ("__x0__", True)
_FALSE = ("__x0__", False)


def _negate(literal: Tuple[Variable, bool]) -> Tuple[Variable, bool]:
    var, polarity = literal
    return (var, not polarity)


def fix_variables_roof(model: IsingModel) -> Dict[Variable, int]:
    """Weak-persistency fixing via the roof-duality implication network."""
    if len(model) == 0:
        return {}
    linear, quadratic = _posiform(model)

    graph = nx.DiGraph()
    graph.add_node(_TRUE)
    graph.add_node(_FALSE)

    def add_arc(u, v, capacity: float) -> None:
        if graph.has_edge(u, v):
            graph[u][v]["capacity"] += capacity
        else:
            graph.add_edge(u, v, capacity=capacity)

    for (var, polarity), coeff in linear.items():
        literal = (var, polarity)
        # a * u = a * u * x0: arcs x0 -> ubar and u -> x0bar.
        add_arc(_TRUE, _negate(literal), coeff / 2.0)
        add_arc(literal, _FALSE, coeff / 2.0)
    for (lit_u, lit_v), coeff in quadratic.items():
        add_arc(lit_u, _negate(lit_v), coeff / 2.0)
        add_arc(lit_v, _negate(lit_u), coeff / 2.0)

    residual = nx.algorithms.flow.preflow_push(graph, _TRUE, _FALSE)

    # Residual reachability from x0: forward edges with spare capacity
    # plus reverse edges carrying flow.
    spare = nx.DiGraph()
    spare.add_nodes_from(residual.nodes())
    for u, v, data in residual.edges(data=True):
        flow = data.get("flow", 0.0)
        capacity = data.get("capacity", 0.0)
        if capacity - flow > 1e-12:
            spare.add_edge(u, v)
        if flow > 1e-12:
            spare.add_edge(v, u)
    reachable = set(nx.descendants(spare, _TRUE)) | {_TRUE}

    fixed: Dict[Variable, int] = {}
    for var in model.variables:
        true_reached = (var, True) in reachable
        false_reached = (var, False) in reachable
        if true_reached and not false_reached:
            fixed[var] = SPIN_TRUE
        elif false_reached and not true_reached:
            fixed[var] = SPIN_FALSE
    return fixed


def fix_variables(model: IsingModel, method: str = "roof") -> Dict[Variable, int]:
    """Determine spins that hold in some optimal solution.

    Args:
        model: the Ising model to presolve.
        method: ``"local"`` for the dominated-field rule only, ``"roof"``
            for roof duality (which subsumes the local rule).

    Returns:
        Mapping of variable -> spin for every variable whose optimal
        value could be determined.  Apply with
        :meth:`IsingModel.fix_variable` to shrink the problem.
    """
    if method == "local":
        return fix_variables_local(model)
    if method == "roof":
        fixed = fix_variables_roof(model)
        if fixed:
            remaining = model
            for var, spin in fixed.items():
                remaining = remaining.fix_variable(var, spin)
            for var, spin in fix_variables(remaining, method="roof").items():
                fixed[var] = spin
        return fixed
    raise ValueError(f"unknown method {method!r}")
