"""Ising-model core: the paper's mathematical substrate.

A quantum annealer minimizes a quadratic pseudo-Boolean function
(Equation (2) of the paper):

    H(sigma) = sum_i h_i sigma_i + sum_{i<j} J_ij sigma_i sigma_j

with each sigma_i a "physics Boolean" in {-1, +1}.  This package holds
the :class:`~repro.ising.model.IsingModel` representation of such
functions, the penalty-model synthesizer that derives gate Hamiltonians
from truth tables (Section 4.3.2, Tables 2-4), the verified standard-cell
library (Table 5), and the roof-duality presolver used by qmasm to elide
qubits (Section 4.4).
"""

from repro.ising.model import IsingModel, SPIN_FALSE, SPIN_TRUE, bool_to_spin, spin_to_bool
from repro.ising.penalty import PenaltySynthesisError, synthesize_penalty, PenaltyModel
from repro.ising.cells import CELL_LIBRARY, CellSpec, cell_hamiltonian
from repro.ising.roofduality import fix_variables

__all__ = [
    "IsingModel",
    "SPIN_FALSE",
    "SPIN_TRUE",
    "bool_to_spin",
    "spin_to_bool",
    "PenaltyModel",
    "PenaltySynthesisError",
    "synthesize_penalty",
    "CELL_LIBRARY",
    "CellSpec",
    "cell_hamiltonian",
    "fix_variables",
]
