"""Penalty-model synthesis: truth tables -> gate Hamiltonians.

This implements Section 4.3.2 of the paper.  A quantum-annealing version
of a logic cell is a quadratic pseudo-Boolean function that is minimized
*exactly* on the valid rows of the cell's truth table.  Finding one means
solving a system of (in)equalities over the ``h`` and ``J`` coefficients
(Table 2 for AND).  When the system is infeasible -- famously for XOR and
XNOR -- ancilla variables add truth-table columns until it becomes
feasible (Tables 3 and 4).

The paper solves these systems with MiniZinc; we use scipy's ``linprog``,
which handles the same linear systems, and we *maximize the energy gap*
between valid and invalid rows subject to coefficient-range bounds, the
same objective the paper used to pick the Table 5 cell functions
("maximizing the gap ... tends to lead to more robust output on D-Wave
hardware").
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.ising.model import SPIN_FALSE, SPIN_TRUE, IsingModel

#: D-Wave 2000Q coefficient ranges (Section 2).  The J range is the
#: symmetric [-1, 1] subset used for *logical* cell design; the hardware
#: asymmetry (J in [-2, 1]) is handled later by repro.hardware.scaling.
DEFAULT_H_RANGE = (-2.0, 2.0)
DEFAULT_J_RANGE = (-1.0, 1.0)

#: Enumerate ancilla augmentations exhaustively up to this many options;
#: beyond it, fall back to seeded random search.
_EXHAUSTIVE_LIMIT = 4096
_RANDOM_ATTEMPTS = 2000


class PenaltySynthesisError(Exception):
    """No feasible penalty model within the allowed ancilla budget."""


@dataclass
class PenaltyModel:
    """A synthesized gate Hamiltonian.

    Attributes:
        model: the Ising model over ``variables + ancillas``.
        variables: the decision (truth-table) variable names, in order.
        ancillas: names of any ancilla variables that were added.
        ground_energy: H evaluated at any valid row (the paper's ``k``).
        gap: minimum H(invalid) - H(valid); larger is more noise-robust.
        augmentation: for each valid row, the spin values assigned to the
            ancillas (the extra truth-table columns of Table 3).
    """

    model: IsingModel
    variables: List[str]
    ancillas: List[str] = field(default_factory=list)
    ground_energy: float = 0.0
    gap: float = 0.0
    augmentation: List[Tuple[int, ...]] = field(default_factory=list)

    @property
    def all_variables(self) -> List[str]:
        return list(self.variables) + list(self.ancillas)


def _rows_as_spins(rows: Iterable[Sequence[int]], width: int) -> List[Tuple[int, ...]]:
    """Normalize truth-table rows (bools or spins) to spin tuples."""
    out = []
    for row in rows:
        if len(row) != width:
            raise ValueError(f"row {row!r} has width {len(row)}, expected {width}")
        spins = []
        for value in row:
            if value in (0, False):
                spins.append(SPIN_FALSE)
            elif value in (1, True):
                spins.append(SPIN_TRUE)
            elif value in (SPIN_FALSE, SPIN_TRUE):
                spins.append(int(value))
            else:
                raise ValueError(f"truth-table entry {value!r} is not Boolean")
        out.append(tuple(spins))
    return out


def _term_vector(spins: Sequence[int], n: int) -> np.ndarray:
    """Coefficient row of the LP: [sigma_0..sigma_{n-1}, sigma_i*sigma_j...].

    This is one row of Table 2/Table 4: evaluating H at a specific spin
    assignment yields a linear expression in the unknown h and J.
    """
    linear = list(spins)
    quadratic = [spins[i] * spins[j] for i, j in itertools.combinations(range(n), 2)]
    return np.array(linear + quadratic, dtype=float)


def _solve_system(
    valid: List[Tuple[int, ...]],
    n: int,
    h_range: Tuple[float, float],
    j_range: Tuple[float, float],
    min_gap: float,
) -> Optional[Tuple[np.ndarray, float, float]]:
    """Solve the Section 4.3.2 system of (in)equalities by LP.

    Unknowns: n linear coefficients, C(n,2) quadratic coefficients, the
    ground energy k, and the gap g.  Valid rows pin H == k; every other
    spin assignment requires H >= k + g.  The objective maximizes g.

    Returns ``(coefficients, k, g)`` or None if infeasible.
    """
    valid_set = set(valid)
    num_quad = n * (n - 1) // 2
    num_unknowns = n + num_quad + 2  # + k + g
    k_idx, g_idx = n + num_quad, n + num_quad + 1

    eq_rows, ineq_rows = [], []
    for spins in itertools.product((SPIN_FALSE, SPIN_TRUE), repeat=n):
        coeffs = np.zeros(num_unknowns)
        coeffs[: n + num_quad] = _term_vector(spins, n)
        if spins in valid_set:
            coeffs[k_idx] = -1.0  # H(row) - k == 0
            eq_rows.append(coeffs)
        else:
            # H(row) - k - g >= 0   ->   -H(row) + k + g <= 0
            row = -coeffs
            row[k_idx] = 1.0
            row[g_idx] = 1.0
            ineq_rows.append(row)

    objective = np.zeros(num_unknowns)
    objective[g_idx] = -1.0  # maximize g

    bounds = (
        [h_range] * n
        + [j_range] * num_quad
        + [(None, None)]  # k is free
        + [(min_gap, None)]  # require a strictly positive gap
    )
    result = linprog(
        objective,
        A_ub=np.array(ineq_rows) if ineq_rows else None,
        b_ub=np.zeros(len(ineq_rows)) if ineq_rows else None,
        A_eq=np.array(eq_rows) if eq_rows else None,
        b_eq=np.zeros(len(eq_rows)) if eq_rows else None,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        return None
    x = result.x
    return x[: n + num_quad], float(x[k_idx]), float(x[g_idx])


def _build_model(
    coeffs: np.ndarray, names: Sequence[str], tol: float = 1e-9
) -> IsingModel:
    """Turn an LP solution vector into an IsingModel over named variables."""
    n = len(names)
    model = IsingModel()
    for i, name in enumerate(names):
        model.add_variable(name, 0.0)
    for i, name in enumerate(names):
        if abs(coeffs[i]) > tol:
            model.add_variable(name, float(coeffs[i]))
    for idx, (i, j) in enumerate(itertools.combinations(range(n), 2)):
        value = coeffs[n + idx]
        if abs(value) > tol:
            model.add_interaction(names[i], names[j], float(value))
    return model


def _augmentations(
    num_valid: int, num_ancillas: int, rng: random.Random
) -> Iterable[Tuple[Tuple[int, ...], ...]]:
    """Yield candidate ancilla columns: one spin tuple per valid row.

    Exhaustive when the space is small (Table 3 shows one of XOR's eight
    workable single-ancilla augmentations), randomized otherwise.
    """
    per_row = list(
        itertools.product((SPIN_FALSE, SPIN_TRUE), repeat=num_ancillas)
    )
    space = len(per_row) ** num_valid
    if space <= _EXHAUSTIVE_LIMIT:
        yield from itertools.product(per_row, repeat=num_valid)
    else:
        seen = set()
        for _ in range(_RANDOM_ATTEMPTS):
            candidate = tuple(rng.choice(per_row) for _ in range(num_valid))
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def synthesize_penalty(
    valid_rows: Iterable[Sequence[int]],
    variables: Sequence[str],
    max_ancillas: int = 2,
    h_range: Tuple[float, float] = DEFAULT_H_RANGE,
    j_range: Tuple[float, float] = DEFAULT_J_RANGE,
    min_gap: float = 1e-3,
    seed: int = 2019,
) -> PenaltyModel:
    """Synthesize a gate Hamiltonian for a truth table.

    Args:
        valid_rows: the valid truth-table rows, each a sequence of
            Booleans (or spins) over ``variables`` in order.
        variables: names for the decision variables (e.g. ``["Y","A","B"]``).
        max_ancillas: how many ancilla variables may be added when the
            plain system is infeasible (XOR/XNOR need exactly one).
        h_range / j_range: coefficient bounds, defaulting to the logical
            design ranges used for the paper's Table 5.
        min_gap: smallest acceptable valid/invalid energy gap.
        seed: RNG seed for randomized augmentation search (the search is
            deterministic for the small tables that fit the exhaustive
            path).

    Returns:
        A :class:`PenaltyModel` whose Ising model is minimized exactly on
        the valid rows, with the gap maximized by the LP.

    Raises:
        PenaltySynthesisError: if no feasible model exists within
            ``max_ancillas`` ancillas.
    """
    variables = list(variables)
    n = len(variables)
    valid = _rows_as_spins(valid_rows, n)
    if not valid:
        raise ValueError("truth table needs at least one valid row")
    if len(set(valid)) != len(valid):
        raise ValueError("duplicate truth-table rows")
    rng = random.Random(seed)

    for num_ancillas in range(max_ancillas + 1):
        names = variables + [f"$anc{i + 1}" for i in range(num_ancillas)]
        best: Optional[PenaltyModel] = None
        for augmentation in _augmentations(len(valid), num_ancillas, rng):
            augmented = [
                row + anc for row, anc in zip(valid, augmentation)
            ]
            if len(set(augmented)) != len(augmented):
                continue  # two valid rows collapsed onto one point
            solution = _solve_system(
                augmented, n + num_ancillas, h_range, j_range, min_gap
            )
            if solution is None:
                continue
            coeffs, k, gap = solution
            candidate = PenaltyModel(
                model=_build_model(coeffs, names),
                variables=variables,
                ancillas=names[n:],
                ground_energy=k,
                gap=gap,
                augmentation=list(augmentation),
            )
            if best is None or candidate.gap > best.gap:
                best = candidate
            if num_ancillas == 0:
                break  # no augmentation choices to compare
        if best is not None:
            return best

    raise PenaltySynthesisError(
        f"no penalty model for {len(valid)}-row table over {n} variables "
        f"within {max_ancillas} ancillas"
    )


def verify_penalty(
    penalty: PenaltyModel, valid_rows: Iterable[Sequence[int]], tol: float = 1e-6
) -> bool:
    """Check that a penalty model's ground states are exactly the valid rows.

    For each assignment of the decision variables, minimize over the
    ancillas; the result must equal the ground energy on valid rows and
    exceed it (by at least ``gap`` - tol) elsewhere.
    """
    valid = set(_rows_as_spins(valid_rows, len(penalty.variables)))
    names = penalty.variables
    ancillas = penalty.ancillas
    for spins in itertools.product((SPIN_FALSE, SPIN_TRUE), repeat=len(names)):
        best = min(
            penalty.model.energy(
                {**dict(zip(names, spins)), **dict(zip(ancillas, anc))}
            )
            for anc in itertools.product(
                (SPIN_FALSE, SPIN_TRUE), repeat=len(ancillas)
            )
        ) if ancillas else penalty.model.energy(dict(zip(names, spins)))
        if spins in valid:
            if abs(best - penalty.ground_energy) > tol:
                return False
        else:
            if best < penalty.ground_energy + penalty.gap - tol:
                return False
    return True


def truth_table_of(func, num_inputs: int) -> List[Tuple[int, ...]]:
    """Enumerate valid rows ``(Y, A, B, ...)`` of a Boolean function.

    ``func`` maps a tuple of input Booleans to the output Boolean; the
    output is listed *first* to match the paper's Table 2/4 column order.
    """
    rows = []
    for bits in itertools.product((False, True), repeat=num_inputs):
        rows.append((bool(func(*bits)),) + bits)
    return rows
