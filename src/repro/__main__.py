"""``python -m repro`` runs the verilog2qmasm command-line interface."""

import sys

from repro.core.cli import main

if __name__ == "__main__":
    sys.exit(main())
