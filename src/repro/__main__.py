"""``python -m repro`` runs the verilog2qmasm command-line interface.

Beyond compiling/running (``--run``, ``--pin``, ``--solver``), the CLI
exposes the pass pipeline: ``--time-passes`` prints the per-stage
timing/counter tables, ``--stats`` prints the Section 6.1 static
properties, and ``--no-cache`` bypasses the compilation and embedding
caches.  ``python -m repro serve`` starts the HTTP/JSON job service
(see ``repro.service``); with ``--state-dir`` it write-ahead journals
every job so acknowledged work survives crashes and restarts.  See
``python -m repro --help`` for the full flag list and
``python -m repro serve --help`` for the service's.
"""

import sys

from repro.core.cli import main

if __name__ == "__main__":
    sys.exit(main())
