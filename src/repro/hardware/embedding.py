"""Minor embedding: mapping logical variables onto chains of qubits.

The Chimera graph contains no odd cycles, so almost none of the cell
Hamiltonians of Table 5 fit the hardware directly (Section 4.4).  The
fix is *minor embedding* (Choi 2008): replace a logical variable with a
connected chain of physical qubits tied together by strong ferromagnetic
(negative-J) couplers, such that every logical coupling is backed by at
least one physical coupler between the two chains.

We reproduce the randomized heuristic of Cai, Macready & Roy (the
algorithm inside D-Wave's SAPI, which the paper uses): variables are
embedded one at a time by growing shortest-path trees from the chains of
already-embedded neighbors, with qubit costs that grow exponentially
with how many chains already occupy a qubit; several improvement rounds
then re-embed each variable in turn until no qubit is shared.  Because
the heuristic is randomized, the physical qubit count varies from
compilation to compilation -- exactly the behaviour Section 6.1 reports
(369 +/- 26 qubits over 25 compilations).
"""

from __future__ import annotations

import hashlib
import random
import time
import weakref
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as _sparse_dijkstra

from repro.core import trace
from repro.ising.model import IsingModel
from repro.solvers.sampleset import SampleSet

Variable = Hashable
Qubit = int


class EmbeddingError(Exception):
    """No valid embedding was found within the retry budget.

    Carries structured diagnostics so failures on degraded hardware are
    debuggable from the message alone: how big the source and target
    graphs were and how much retry budget was burned.  All fields are
    optional -- low-level checks raise with whatever context they have.

    Attributes:
        source_size: logical variable count of the source graph.
        source_edges: logical coupling count of the source graph.
        target_size: qubit count of the (working) target graph.
        attempts: escalation attempts used before giving up.
        restarts: total randomized restarts across all attempts.
    """

    def __init__(
        self,
        message: str,
        source_size: Optional[int] = None,
        source_edges: Optional[int] = None,
        target_size: Optional[int] = None,
        attempts: Optional[int] = None,
        restarts: Optional[int] = None,
    ):
        self.source_size = source_size
        self.source_edges = source_edges
        self.target_size = target_size
        self.attempts = attempts
        self.restarts = restarts
        details = []
        if source_size is not None:
            graph = f"source={source_size} vars"
            if source_edges is not None:
                graph += f"/{source_edges} edges"
            details.append(graph)
        if target_size is not None:
            details.append(f"target={target_size} qubits")
        if attempts is not None:
            details.append(f"attempts={attempts}")
        if restarts is not None:
            details.append(f"restarts={restarts}")
        if details:
            message = f"{message} [{', '.join(details)}]"
        super().__init__(message)


@dataclass
class Embedding:
    """A minor embedding: each logical variable's chain of qubits."""

    chains: Dict[Variable, FrozenSet[Qubit]]

    def __getitem__(self, v: Variable) -> FrozenSet[Qubit]:
        return self.chains[v]

    def __contains__(self, v: Variable) -> bool:
        return v in self.chains

    def __len__(self) -> int:
        return len(self.chains)

    def total_qubits(self) -> int:
        """Physical qubit count -- the paper's Section 6.1 metric."""
        return sum(len(chain) for chain in self.chains.values())

    def max_chain_length(self) -> int:
        return max((len(chain) for chain in self.chains.values()), default=0)

    def used_qubits(self) -> Set[Qubit]:
        out: Set[Qubit] = set()
        for chain in self.chains.values():
            out |= chain
        return out

    def validate(self, source_edges: Iterable[Tuple[Variable, Variable]], target: nx.Graph) -> None:
        """Raise ``EmbeddingError`` unless this is a proper minor embedding.

        Checks chain disjointness, chain connectivity in the target, and
        that every source edge is backed by at least one target coupler.
        Raised errors carry the source and target sizes so validation
        failures on degraded working graphs are diagnosable.
        """
        sizes = dict(source_size=len(self.chains), target_size=len(target))
        seen: Set[Qubit] = set()
        for v, chain in self.chains.items():
            if not chain:
                raise EmbeddingError(f"empty chain for {v!r}", **sizes)
            overlap = seen & chain
            if overlap:
                raise EmbeddingError(
                    f"qubits {overlap} shared by multiple chains", **sizes
                )
            seen |= chain
            if not all(q in target for q in chain):
                raise EmbeddingError(
                    f"chain for {v!r} uses qubits outside the target", **sizes
                )
            if len(chain) > 1 and not nx.is_connected(target.subgraph(chain)):
                raise EmbeddingError(f"chain for {v!r} is not connected", **sizes)
        for u, v in source_edges:
            if u == v:
                continue
            if not self._chains_coupled(u, v, target):
                raise EmbeddingError(
                    f"no coupler backs source edge ({u!r}, {v!r})", **sizes
                )

    def _chains_coupled(self, u: Variable, v: Variable, target: nx.Graph) -> bool:
        chain_u, chain_v = self.chains[u], self.chains[v]
        return any(target.has_edge(a, b) for a in chain_u for b in chain_v)


# ----------------------------------------------------------------------
# The heuristic embedder
# ----------------------------------------------------------------------
class _EmbedderState:
    """One attempt at embedding a source graph into a target graph.

    Shortest paths run through scipy's C-level Dijkstra over a directed
    adjacency whose edge weight into a node is that node's usage cost,
    so a full-C16 search stays fast enough for the 25-compilation sweep
    of Section 6.1.
    """

    def __init__(self, source: nx.Graph, target: nx.Graph, rng: random.Random):
        self.source = source
        self.target = target
        self.rng = rng
        self.chains: Dict[Variable, Set[Qubit]] = {}
        # Exponential overlap penalty base.  Sharing one qubit must cost
        # more than any detour through free qubits, and detours can be
        # as long as the target's diameter times the source degree, so
        # the base scales with the target size.
        self.penalty_base = max(8.0, float(len(target)))
        #: Root-selection noise amplitude (breaks deterministic cycles).
        self._noise = 0.5

        self._nodes: List[Qubit] = list(target.nodes())
        self._index: Dict[Qubit, int] = {q: i for i, q in enumerate(self._nodes)}
        n = len(self._nodes)
        rows, cols = [], []
        for u, v in target.edges():
            iu, iv = self._index[u], self._index[v]
            rows.append(iu)
            cols.append(iv)
            rows.append(iv)
            cols.append(iu)
        self._rows = np.array(rows, dtype=np.int32)
        self._cols = np.array(cols, dtype=np.int32)
        self._n = n
        self.usage = np.zeros(n, dtype=np.int32)

    # -- chain bookkeeping ------------------------------------------------
    def _claim(self, v: Variable, chain: Set[Qubit]) -> None:
        self.chains[v] = chain
        for q in chain:
            self.usage[self._index[q]] += 1

    def _release(self, v: Variable) -> None:
        for q in self.chains.pop(v, ()):  # pragma: no branch
            self.usage[self._index[q]] -= 1

    def _cost_vector(self) -> np.ndarray:
        return np.power(self.penalty_base, self.usage.astype(float))

    # -- shortest-path machinery ------------------------------------------
    def _dijkstra_from_chain(self, chain: Set[Qubit], costs: np.ndarray):
        """Node-weighted multi-source Dijkstra (vectorized).

        Distance to q counts the costs of the nodes *entered* along the
        way (the chain's own qubits are free).  Returns (dist, parent)
        as index-based numpy arrays.
        """
        graph = csr_matrix(
            (costs[self._cols], (self._rows, self._cols)), shape=(self._n, self._n)
        )
        sources = [self._index[q] for q in chain]
        dist, predecessors, _ = _sparse_dijkstra(
            graph,
            directed=True,
            indices=sources,
            return_predecessors=True,
            min_only=True,
        )
        return dist, predecessors

    def _path_to_chain(self, start: int, parent: np.ndarray, chain: Set[Qubit]) -> Set[Qubit]:
        """Interior qubits of the tree path from ``start`` into ``chain``."""
        out: Set[Qubit] = set()
        node = start
        while node >= 0 and self._nodes[node] not in chain:
            out.add(self._nodes[node])
            node = int(parent[node])
        if node < 0 and self._nodes[start] not in chain:
            raise EmbeddingError("disconnected shortest-path tree")
        return out

    # -- embedding a single variable ---------------------------------------
    def embed_variable(self, v: Variable) -> None:
        embedded_neighbors = [u for u in self.source.neighbors(v) if u in self.chains]
        if not embedded_neighbors:
            q = self._cheapest_free_qubit()
            self._claim(v, {q})
            return
        costs = self._cost_vector()
        searches = [
            self._dijkstra_from_chain(self.chains[u], costs)
            for u in embedded_neighbors
        ]
        total = costs.copy()
        for dist, _ in searches:
            total = total + dist
        # Tiny random noise breaks argmin ties and the cycles a fully
        # deterministic improvement sweep can fall into.
        finite = np.isfinite(total)
        if finite.any():
            total = total + self._noise * np.array(
                [self.rng.random() for _ in range(self._n)]
            )
        best_root = int(np.argmin(total))
        if not np.isfinite(total[best_root]):
            raise EmbeddingError(f"variable {v!r} cannot reach its neighbors")
        chain: Set[Qubit] = {self._nodes[best_root]}
        for u, (dist, parent) in zip(embedded_neighbors, searches):
            chain |= self._path_to_chain(best_root, parent, self.chains[u])
        self._claim(v, self._trimmed(v, chain))

    def _cheapest_free_qubit(self) -> Qubit:
        min_usage = int(self.usage.min())
        candidates = np.where(self.usage == min_usage)[0]
        return self._nodes[int(self.rng.choice(list(candidates)))]

    # -- whole-graph passes --------------------------------------------------
    def initial_pass(self) -> None:
        """Scatter singleton chains across the target.

        Spreading the initial placement (rather than growing one dense
        cluster) leaves routing room everywhere; the improvement rounds
        then pull connected variables together.
        """
        free = list(self._nodes)
        self.rng.shuffle(free)
        variables = list(self.source.nodes())
        self.rng.shuffle(variables)
        for v, q in zip(variables, free):
            self._claim(v, {q})

    def improvement_round(self) -> None:
        order = list(self.source.nodes())
        self.rng.shuffle(order)
        for v in order:
            self._release(v)
            self.embed_variable(v)

    def overlap_move(self, bystanders: int = 2, shake_noise: float = 8.0) -> None:
        """Jointly rip out and re-embed every chain involved in overlap.

        Releasing all overlap participants (plus a couple of random
        bystanders to open space) *before* re-embedding any of them lets
        the group relocate as a whole -- single-variable sweeps stall in
        local minima where each chain individually has nowhere better
        to go.
        """
        qubit_owners: Dict[int, List[Variable]] = {}
        for v, chain in self.chains.items():
            for q in chain:
                qubit_owners.setdefault(self._index[q], []).append(v)
        owners: Set[Variable] = set()
        for owner_list in qubit_owners.values():
            if len(owner_list) > 1:
                owners.update(owner_list)
        if not owners:
            return
        others = [v for v in self.chains if v not in owners]
        self.rng.shuffle(others)
        owners.update(others[:bystanders])
        order = list(owners)
        self.rng.shuffle(order)
        for v in owners:
            self._release(v)
        saved_noise = self._noise
        self._noise = shake_noise
        try:
            for v in order:
                self.embed_variable(v)
        finally:
            self._noise = saved_noise

    def max_usage(self) -> int:
        return int(self.usage.max()) if self._n else 0

    # -- post-processing -------------------------------------------------------
    def _trimmed(self, v: Variable, chain: Set[Qubit]) -> Set[Qubit]:
        """Drop chain qubits not needed for connectivity or coupling.

        Keeping chains tight as they are built (not just at the end) is
        what lets the improvement rounds converge: bloated path unions
        crowd the graph and force overlaps.
        """
        neighbor_chains = [
            self.chains[u] for u in self.source.neighbors(v) if u in self.chains
        ]
        chain = set(chain)
        changed = True
        while changed and len(chain) > 1:
            changed = False
            for q in sorted(chain):
                candidate = chain - {q}
                if not nx.is_connected(self.target.subgraph(candidate)):
                    continue
                if all(
                    any(
                        self.target.has_edge(a, b)
                        for a in candidate
                        for b in nc
                    )
                    for nc in neighbor_chains
                ):
                    chain = candidate
                    changed = True
                    break
        return chain

    def trim_chains(self) -> None:
        """Re-trim every chain against its final neighborhood."""
        for v in list(self.chains):
            chain = self._trimmed(v, self.chains[v])
            self._release(v)
            self._claim(v, chain)


def _one_restart(
    source: nx.Graph, target: nx.Graph, rng: random.Random, rounds: int
) -> Optional[Embedding]:
    """One randomized restart of the embedder; ``None`` on contention."""
    state = _EmbedderState(source, target, rng)
    state.initial_pass()
    # Two full sweeps route everything; overlap moves then dissolve the
    # remaining contention.
    state.improvement_round()
    state.improvement_round()
    for _ in range(rounds):
        if state.max_usage() <= 1:
            break
        state.overlap_move()
    if state.max_usage() > 1:
        return None
    # Polish: extra sweeps shorten chains; keep the last valid
    # configuration in case a sweep re-introduces overlap.
    snapshot = {v: set(c) for v, c in state.chains.items()}
    for _ in range(2):
        state.improvement_round()
        for _ in range(rounds // 2):
            if state.max_usage() <= 1:
                break
            state.overlap_move()
        if state.max_usage() > 1:
            break
        if int(state.usage.sum()) <= sum(len(c) for c in snapshot.values()):
            snapshot = {v: set(c) for v, c in state.chains.items()}
    if state.max_usage() > 1:
        for v in list(state.chains):
            state._release(v)
        for v, chain in snapshot.items():
            state._claim(v, chain)
    state.trim_chains()
    embedding = Embedding(
        {v: frozenset(chain) for v, chain in state.chains.items()}
    )
    embedding.validate(source.edges(), target)
    return embedding


def find_embedding(
    source: nx.Graph,
    target: nx.Graph,
    seed: Optional[int] = None,
    tries: int = 16,
    rounds: int = 32,
    max_attempts: int = 1,
    backoff_s: float = 0.0,
    stats: Optional[Dict[str, float]] = None,
) -> Embedding:
    """Find a minor embedding of ``source`` into ``target``.

    The retry budget *escalates*: attempt ``a`` (1-based) runs ``tries``
    reseeded randomized restarts with ``rounds * 2**(a-1)`` improvement
    rounds each, sleeping ``backoff_s * 2**(a-1)`` seconds between
    attempts.  Degraded working graphs (dead qubits/couplers) that defeat
    the default budget usually yield to the deeper later attempts; a
    final failure raises an :class:`EmbeddingError` carrying the source
    size, target size, and budget actually used.

    Args:
        source: the logical interaction graph (one node per variable,
            one edge per non-zero J coefficient).
        target: the hardware graph (e.g. a possibly degraded
            ``chimera_graph(16)`` working graph).
        seed: RNG seed; different seeds give different embeddings, which
            is what makes Section 6.1's qubit counts vary per compile.
        tries: independent randomized restarts per attempt.
        rounds: improvement rounds per restart (first attempt).
        max_attempts: escalation attempts (1 = the classic behavior).
        backoff_s: base sleep between attempts (exponential).
        stats: optional dict populated with ``attempts`` (attempts used)
            and ``restarts`` (total restarts) on success.

    Raises:
        EmbeddingError: if no valid embedding is found.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    if len(source) == 0:
        if stats is not None:
            stats.update(attempts=0, restarts=0)
        return Embedding({})
    if len(source) > len(target):
        raise EmbeddingError(
            "more logical variables than physical qubits",
            source_size=len(source),
            source_edges=source.number_of_edges(),
            target_size=len(target),
        )
    rng = random.Random(seed)
    last_error: Optional[Exception] = None
    restarts = 0
    started = time.perf_counter()
    for attempt in range(1, max_attempts + 1):
        attempt_rounds = rounds * (1 << (attempt - 1))
        for _ in range(tries):
            restarts += 1
            try:
                embedding = _one_restart(
                    source, target, random.Random(rng.getrandbits(64)),
                    attempt_rounds,
                )
            except EmbeddingError as exc:
                last_error = exc
                continue
            if embedding is not None:
                if stats is not None:
                    stats.update(attempts=attempt, restarts=restarts)
                _observe_embedding(
                    embedding,
                    time.perf_counter() - started,
                    attempts=attempt,
                    restarts=restarts,
                    source_size=len(source),
                    target_size=len(target),
                )
                return embedding
        if attempt < max_attempts and backoff_s > 0.0:
            time.sleep(backoff_s * (1 << (attempt - 1)))
    trace.metrics().counter("embed.failures").inc()
    raise EmbeddingError(
        "no embedding found within the retry budget"
        + (f" (last error: {last_error})" if last_error else ""),
        source_size=len(source),
        source_edges=source.number_of_edges(),
        target_size=len(target),
        attempts=max_attempts,
        restarts=restarts,
    )


def _observe_embedding(
    embedding: "Embedding",
    elapsed_s: float,
    **attributes: float,
) -> None:
    """Record a successful embedding search on the ambient collectors."""
    if not trace.enabled():
        return
    chain_lengths = [len(chain) for chain in embedding.chains.values()]
    trace.record(
        "embed.find_embedding",
        duration_s=elapsed_s,
        physical_qubits=sum(chain_lengths),
        max_chain=max(chain_lengths, default=0),
        **attributes,
    )
    registry = trace.metrics()
    registry.counter("embed.attempts").inc(attributes.get("attempts", 0))
    registry.counter("embed.restarts").inc(attributes.get("restarts", 0))
    registry.histogram("embed.chain_length").observe_many(chain_lengths)


def source_graph_of(model: IsingModel) -> nx.Graph:
    """The logical interaction graph of an Ising model."""
    graph = nx.Graph()
    graph.add_nodes_from(model.variables)
    for (u, v), coupling in model.quadratic.items():
        if coupling != 0.0:
            graph.add_edge(u, v)
    return graph


#: Memoized fingerprints for long-lived graphs (a full C16 working graph
#: has ~6000 edges; re-hashing it on every run would be measurable).
_graph_fingerprints: "weakref.WeakKeyDictionary[nx.Graph, str]" = (
    weakref.WeakKeyDictionary()
)


def graph_fingerprint(graph: nx.Graph) -> str:
    """A stable content fingerprint of a graph's node and edge sets.

    Node identity and adjacency are all the minor embedder looks at, so
    two graphs with equal fingerprints admit exactly the same
    embeddings -- which makes this the cache key for the embedding cache
    in :mod:`repro.core.cache`.  Hardware graphs are long-lived, so the
    digest is memoized per graph object via weak references.
    """
    try:
        cached = _graph_fingerprints.get(graph)
    except TypeError:  # graph subclass without weakref support
        cached = None
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for node in sorted(repr(n) for n in graph.nodes()):
        digest.update(node.encode("utf-8"))
        digest.update(b"\x00")
    digest.update(b"\x01")
    for edge in sorted(
        "|".join(sorted((repr(u), repr(v)))) for u, v in graph.edges()
    ):
        digest.update(edge.encode("utf-8"))
        digest.update(b"\x00")
    fingerprint = digest.hexdigest()
    try:
        _graph_fingerprints[graph] = fingerprint
    except TypeError:
        pass
    return fingerprint


# ----------------------------------------------------------------------
# Applying an embedding to a model and undoing it on samples
# ----------------------------------------------------------------------
def default_chain_strength(model: IsingModel) -> float:
    """QMASM's default: twice the largest-magnitude J in the program."""
    strongest = max(model.max_abs_quadratic(), model.max_abs_linear(), 0.5)
    return 2.0 * strongest


def embed_ising(
    model: IsingModel,
    embedding: Embedding,
    target: nx.Graph,
    chain_strength: Optional[float] = None,
) -> IsingModel:
    """Produce the physical Hamiltonian of Section 4.4.

    Linear biases are split evenly across each chain's qubits; each
    logical coupling is split evenly across every available physical
    coupler between the two chains; intra-chain couplers get the strong
    ferromagnetic ``-chain_strength`` that equates the chain's qubits.
    """
    if chain_strength is None:
        chain_strength = default_chain_strength(model)
    if chain_strength <= 0:
        raise ValueError("chain_strength must be positive")

    physical = IsingModel(offset=model.offset)
    for v, bias in model.linear.items():
        chain = embedding[v]
        for q in chain:
            physical.add_variable(q, bias / len(chain))
    for (u, v), coupling in model.quadratic.items():
        if coupling == 0.0:
            continue
        couplers = [
            (a, b)
            for a in embedding[u]
            for b in embedding[v]
            if target.has_edge(a, b)
        ]
        if not couplers:
            raise EmbeddingError(f"no coupler for logical edge ({u!r}, {v!r})")
        for a, b in couplers:
            physical.add_interaction(a, b, coupling / len(couplers))
    for v in model.variables:
        chain = embedding[v]
        if len(chain) > 1:
            for a, b in target.subgraph(chain).edges():
                physical.add_interaction(a, b, -chain_strength)
    return physical


def unembed_sampleset(
    physical_samples: SampleSet,
    embedding: Embedding,
    logical_model: IsingModel,
    method: str = "majority",
) -> SampleSet:
    """Map physical samples back to logical variables.

    Broken chains (qubits disagreeing within one chain) are resolved by
    majority vote by default, or discarded with ``method="discard"``.
    The returned set's ``info["chain_break_fraction"]`` records how often
    chains broke, a standard health metric for embedded problems.
    """
    variables = list(logical_model.variables)
    qubit_order = physical_samples.variables
    qubit_index = {q: i for i, q in enumerate(qubit_order)}
    chain_indices = {
        v: [qubit_index[q] for q in sorted(embedding[v])] for v in variables
    }

    rows: List[List[int]] = []
    occurrences: List[int] = []
    breaks = 0
    total_chains = 0
    for i in range(len(physical_samples)):
        record = physical_samples.records[i]
        logical_row = []
        broken = False
        for v in variables:
            spins = record[chain_indices[v]]
            total = int(np.sum(spins))
            total_chains += 1
            if abs(total) != len(spins):
                breaks += 1
                broken = True
            if total > 0:
                logical_row.append(1)
            elif total < 0:
                logical_row.append(-1)
            else:
                logical_row.append(int(spins[0]))
        if method == "discard" and broken:
            continue
        rows.append(logical_row)
        occurrences.append(int(physical_samples.occurrences[i]))

    info = dict(physical_samples.info)
    info["chain_break_fraction"] = breaks / total_chains if total_chains else 0.0
    if not rows:
        out = SampleSet.empty(variables)
        out.info = info
        return out
    records = np.array(rows, dtype=np.int8)
    energies = logical_model.energies(records.astype(float), order=variables)
    return SampleSet(variables, records, energies, np.array(occurrences), info)
