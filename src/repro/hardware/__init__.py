"""The annealer hardware model (Section 2 of the paper, generalized).

- :mod:`repro.hardware.topology`: the pluggable topology layer -- a
  :class:`~repro.hardware.topology.Topology` interface (working graph,
  coordinates, native-cell tiles, fingerprint) with Chimera (2000Q),
  Pegasus-style (Advantage), and Zephyr-style (Advantage2)
  implementations.
- :mod:`repro.hardware.registry`: the name -> topology backend registry
  every layer outside ``repro/hardware/`` goes through
  (``make_topology("chimera", size=16)``).
- :mod:`repro.hardware.chimera`: the Chimera working graph -- a 2-D mesh
  of 8-qubit bipartite unit cells (Figure 1); a 2000Q is a C16 (16 x 16
  cells, nominal 2048 qubits) with some drop-out.
- :mod:`repro.hardware.embedding`: randomized heuristic minor embedding
  (the Cai-Macready-Roy algorithm family used by SAPI), chain handling,
  and sample unembedding.
- :mod:`repro.hardware.scaling`: coefficient-range enforcement
  (h in [-2, 2], J in [-2, 1]) and analog precision quantization.
"""

from repro.hardware.chimera import (
    ChimeraCoordinates,
    chimera_graph,
    coupler_dropout,
    dropout,
    DWAVE_2000Q_CELLS,
)
from repro.hardware.embedding import (
    EmbeddingError,
    Embedding,
    find_embedding,
    embed_ising,
    unembed_sampleset,
)
from repro.hardware.registry import (
    available_topologies,
    make_topology,
    register_topology,
)
from repro.hardware.scaling import H_RANGE, J_RANGE, scale_to_hardware, quantize
from repro.hardware.topology import (
    ChimeraTopology,
    PegasusTopology,
    Topology,
    ZephyrTopology,
)

__all__ = [
    "ChimeraCoordinates",
    "ChimeraTopology",
    "PegasusTopology",
    "Topology",
    "ZephyrTopology",
    "available_topologies",
    "make_topology",
    "register_topology",
    "chimera_graph",
    "coupler_dropout",
    "dropout",
    "DWAVE_2000Q_CELLS",
    "Embedding",
    "EmbeddingError",
    "find_embedding",
    "embed_ising",
    "unembed_sampleset",
    "H_RANGE",
    "J_RANGE",
    "scale_to_hardware",
    "quantize",
]
