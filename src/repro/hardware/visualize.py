"""Text rendering of annealer topologies and minor embeddings.

Terminal-friendly views of what the place-and-route step did: which
native cells (topology tiles) an embedding occupies, how long each
chain is, and a Figure-1-style close-up of a single Chimera unit cell.
Useful when debugging embeddings or explaining the §6.1 qubit-count
numbers.  The occupancy map works for any registered topology via its
:meth:`~repro.hardware.topology.Topology.tile_of` scheme; passing
``rows``/``columns``/``tile`` keeps the historical Chimera-only
signature working.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

import networkx as nx

from repro.hardware.chimera import ChimeraCoordinates
from repro.hardware.embedding import Embedding
from repro.hardware.topology import ChimeraTopology, Topology


def render_occupancy(
    embedding: Embedding,
    rows: Optional[int] = None,
    columns: Optional[int] = None,
    tile: int = 4,
    topology: Optional[Topology] = None,
) -> str:
    """A tile-grid map of native cells: qubits used per cell.

    Each cell prints its used-qubit count (``.`` for empty), giving an
    at-a-glance picture of how the embedding spreads over the chip.
    Pass either a :class:`Topology` or the historical Chimera shape
    (``rows``/``columns``/``tile``).
    """
    if topology is None:
        if rows is None:
            raise ValueError("render_occupancy needs a topology or rows")
        topology = ChimeraTopology(rows, columns, tile)
    grid_rows, grid_cols = topology.tile_shape
    cell_size = max(len(members) for members in topology.tiles().values())
    used_per_cell: Dict[tuple, int] = {}
    for chain in embedding.chains.values():
        for qubit in chain:
            key = topology.tile_of(qubit)
            used_per_cell[key] = used_per_cell.get(key, 0) + 1

    lines = [
        f"{topology.family} cell occupancy (qubits used of up to "
        f"{cell_size} per cell; '.' = empty)"
    ]
    for row in range(grid_rows):
        cells = []
        for col in range(grid_cols):
            used = used_per_cell.get((row, col), 0)
            cells.append(f"{used}" if used else ".")
        lines.append(" ".join(f"{c:>2}" for c in cells))
    total = embedding.total_qubits()
    lines.append(
        f"{len(embedding)} chains, {total} qubits, "
        f"{len(used_per_cell)} cells touched"
    )
    return "\n".join(lines)


def render_chains(embedding: Embedding, limit: int = 30) -> str:
    """A per-variable chain-length table, longest chains first."""
    entries = sorted(
        embedding.chains.items(), key=lambda kv: (-len(kv[1]), str(kv[0]))
    )
    lines = ["chain lengths (longest first)"]
    for variable, chain in entries[:limit]:
        bar = "#" * len(chain)
        lines.append(f"  {str(variable):>24} {len(chain):>3} {bar}")
    if len(entries) > limit:
        lines.append(f"  ... {len(entries) - limit} more")
    histogram: Dict[int, int] = {}
    for chain in embedding.chains.values():
        histogram[len(chain)] = histogram.get(len(chain), 0) + 1
    summary = ", ".join(
        f"{count}x len {length}" for length, count in sorted(histogram.items())
    )
    lines.append(f"  distribution: {summary}")
    return "\n".join(lines)


def render_unit_cell(
    graph: nx.Graph,
    row: int,
    col: int,
    rows: int,
    columns: Optional[int] = None,
    tile: int = 4,
    occupied: Optional[Dict[int, Hashable]] = None,
) -> str:
    """A Figure-1-style close-up of one unit cell.

    Vertical-partition qubits on the left, horizontal on the right,
    with ``*`` marking couplers present in the (possibly dropped-out)
    working graph and owner labels when ``occupied`` maps qubits to
    variables.
    """
    if columns is None:
        columns = rows
    coords = ChimeraCoordinates(rows, columns, tile)
    vertical = [coords.linear((row, col, 0, k)) for k in range(tile)]
    horizontal = [coords.linear((row, col, 1, k)) for k in range(tile)]
    occupied = occupied or {}

    def label(qubit: int) -> str:
        owner = occupied.get(qubit)
        dead = qubit not in graph
        mark = "x" if dead else ("o" if owner is not None else " ")
        text = f"{qubit:>5}{mark}"
        if owner is not None:
            text += f" ({owner})"
        return text

    lines = [f"unit cell ({row}, {col}):  vertical | horizontal"]
    for k in range(tile):
        couplers = "".join(
            "*" if graph.has_edge(vertical[k], horizontal[j]) else "-"
            for j in range(tile)
        )
        lines.append(f"  {label(vertical[k]):<18} {couplers} {label(horizontal[k])}")
    lines.append("  ('*' = working coupler, 'x' = dropped qubit, 'o' = used)")
    return "\n".join(lines)


def embedding_report(
    embedding: Embedding,
    rows: Optional[int] = None,
    columns: Optional[int] = None,
    tile: int = 4,
    topology: Optional[Topology] = None,
) -> str:
    """Occupancy map plus chain table in one report string."""
    return (
        render_occupancy(embedding, rows, columns, tile, topology=topology)
        + "\n\n"
        + render_chains(embedding)
    )
