"""Text rendering of Chimera graphs and minor embeddings.

Terminal-friendly views of what the place-and-route step did: which
unit cells an embedding occupies, how long each chain is, and a
Figure-1-style close-up of a single unit cell.  Useful when debugging
embeddings or explaining the §6.1 qubit-count numbers.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

import networkx as nx

from repro.hardware.chimera import ChimeraCoordinates
from repro.hardware.embedding import Embedding


def render_occupancy(
    embedding: Embedding,
    rows: int,
    columns: Optional[int] = None,
    tile: int = 4,
) -> str:
    """A rows x columns map of unit cells: qubits used out of 8.

    Each cell prints its used-qubit count (``.`` for empty), giving an
    at-a-glance picture of how the embedding spreads over the chip.
    """
    if columns is None:
        columns = rows
    coords = ChimeraCoordinates(rows, columns, tile)
    used_per_cell: Dict[tuple, int] = {}
    for chain in embedding.chains.values():
        for qubit in chain:
            row, col, _, _ = coords.coordinate(qubit)
            used_per_cell[(row, col)] = used_per_cell.get((row, col), 0) + 1

    lines = [
        "unit-cell occupancy (qubits used of "
        f"{2 * tile} per cell; '.' = empty)"
    ]
    for row in range(rows):
        cells = []
        for col in range(columns):
            used = used_per_cell.get((row, col), 0)
            cells.append(f"{used}" if used else ".")
        lines.append(" ".join(f"{c:>2}" for c in cells))
    total = embedding.total_qubits()
    lines.append(
        f"{len(embedding)} chains, {total} qubits, "
        f"{len(used_per_cell)} cells touched"
    )
    return "\n".join(lines)


def render_chains(embedding: Embedding, limit: int = 30) -> str:
    """A per-variable chain-length table, longest chains first."""
    entries = sorted(
        embedding.chains.items(), key=lambda kv: (-len(kv[1]), str(kv[0]))
    )
    lines = ["chain lengths (longest first)"]
    for variable, chain in entries[:limit]:
        bar = "#" * len(chain)
        lines.append(f"  {str(variable):>24} {len(chain):>3} {bar}")
    if len(entries) > limit:
        lines.append(f"  ... {len(entries) - limit} more")
    histogram: Dict[int, int] = {}
    for chain in embedding.chains.values():
        histogram[len(chain)] = histogram.get(len(chain), 0) + 1
    summary = ", ".join(
        f"{count}x len {length}" for length, count in sorted(histogram.items())
    )
    lines.append(f"  distribution: {summary}")
    return "\n".join(lines)


def render_unit_cell(
    graph: nx.Graph,
    row: int,
    col: int,
    rows: int,
    columns: Optional[int] = None,
    tile: int = 4,
    occupied: Optional[Dict[int, Hashable]] = None,
) -> str:
    """A Figure-1-style close-up of one unit cell.

    Vertical-partition qubits on the left, horizontal on the right,
    with ``*`` marking couplers present in the (possibly dropped-out)
    working graph and owner labels when ``occupied`` maps qubits to
    variables.
    """
    if columns is None:
        columns = rows
    coords = ChimeraCoordinates(rows, columns, tile)
    vertical = [coords.linear((row, col, 0, k)) for k in range(tile)]
    horizontal = [coords.linear((row, col, 1, k)) for k in range(tile)]
    occupied = occupied or {}

    def label(qubit: int) -> str:
        owner = occupied.get(qubit)
        dead = qubit not in graph
        mark = "x" if dead else ("o" if owner is not None else " ")
        text = f"{qubit:>5}{mark}"
        if owner is not None:
            text += f" ({owner})"
        return text

    lines = [f"unit cell ({row}, {col}):  vertical | horizontal"]
    for k in range(tile):
        couplers = "".join(
            "*" if graph.has_edge(vertical[k], horizontal[j]) else "-"
            for j in range(tile)
        )
        lines.append(f"  {label(vertical[k]):<18} {couplers} {label(horizontal[k])}")
    lines.append("  ('*' = working coupler, 'x' = dropped qubit, 'o' = used)")
    return "\n".join(lines)


def embedding_report(
    embedding: Embedding, rows: int, columns: Optional[int] = None, tile: int = 4
) -> str:
    """Occupancy map plus chain table in one report string."""
    return (
        render_occupancy(embedding, rows, columns, tile)
        + "\n\n"
        + render_chains(embedding)
    )
