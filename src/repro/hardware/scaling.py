"""Coefficient-range enforcement and analog precision (Section 2).

Engineering limitations restrict the 2000Q's coefficients to
h in [-2.0, 2.0] and J in [-2.0, 1.0] (the J asymmetry comes from the
rf-SQUID coupler physics).  qmasm "scales coefficients to honor the
hardware-supported ranges"; because scaling every term by the same
positive factor preserves the argmin, this is always safe.  The machine
is also analog, so within those ranges precision is limited; we model
that as quantization to a fixed number of steps.
"""

from __future__ import annotations

from typing import Tuple

from repro.ising.model import IsingModel

#: D-Wave 2000Q external-field range.
H_RANGE: Tuple[float, float] = (-2.0, 2.0)
#: D-Wave 2000Q coupler range (asymmetric: ferromagnetic couplings can
#: be twice as strong as antiferromagnetic ones).
J_RANGE: Tuple[float, float] = (-2.0, 1.0)


def scale_factor(
    model: IsingModel,
    h_range: Tuple[float, float] = H_RANGE,
    j_range: Tuple[float, float] = J_RANGE,
) -> float:
    """The largest uniform factor that keeps every coefficient in range.

    Handles the asymmetric J range: a positive J may only reach
    ``j_range[1]`` while a negative J may reach ``j_range[0]``.
    """
    limits = []
    for bias in model.linear.values():
        if bias > 0:
            limits.append(h_range[1] / bias)
        elif bias < 0:
            limits.append(h_range[0] / bias)
    for coupling in model.quadratic.values():
        if coupling > 0:
            limits.append(j_range[1] / coupling)
        elif coupling < 0:
            limits.append(j_range[0] / coupling)
    if not limits:
        return 1.0
    return min(limits)


def scale_to_hardware(
    model: IsingModel,
    h_range: Tuple[float, float] = H_RANGE,
    j_range: Tuple[float, float] = J_RANGE,
) -> Tuple[IsingModel, float]:
    """Scale ``model`` so it exactly fills the hardware ranges.

    Returns ``(scaled_model, factor)``.  Scaling up as well as down is
    intentional: using the full analog range maximizes the effective
    energy gaps relative to the machine's fixed noise floor.
    """
    factor = scale_factor(model, h_range, j_range)
    return model.scaled(factor), factor


def quantize(model: IsingModel, steps: int = 256) -> IsingModel:
    """Round coefficients to the machine's analog precision.

    The 2000Q's control precision is limited; we model it as ``steps``
    uniform levels across each range (so an h of granularity 4/steps and
    a J of granularity 3/steps by default).
    """
    if steps < 2:
        raise ValueError("steps must be at least 2")
    h_step = (H_RANGE[1] - H_RANGE[0]) / steps
    j_step = (J_RANGE[1] - J_RANGE[0]) / steps
    out = IsingModel(offset=model.offset)
    for v, bias in model.linear.items():
        out.add_variable(v, round(bias / h_step) * h_step)
    for (u, v), coupling in model.quadratic.items():
        out.add_interaction(u, v, round(coupling / j_step) * j_step)
    return out


def check_ranges(
    model: IsingModel,
    h_range: Tuple[float, float] = H_RANGE,
    j_range: Tuple[float, float] = J_RANGE,
    tol: float = 1e-9,
) -> None:
    """Raise ``ValueError`` if any coefficient falls outside the ranges."""
    for v, bias in model.linear.items():
        if not h_range[0] - tol <= bias <= h_range[1] + tol:
            raise ValueError(f"h[{v!r}] = {bias} outside {h_range}")
    for (u, v), coupling in model.quadratic.items():
        if not j_range[0] - tol <= coupling <= j_range[1] + tol:
            raise ValueError(f"J[{u!r},{v!r}] = {coupling} outside {j_range}")
