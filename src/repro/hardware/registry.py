"""Backend registry: name -> :class:`~repro.hardware.topology.Topology`.

The single place the rest of the codebase turns a topology *name* into
a topology *object*.  Layers outside ``repro/hardware/`` never import
:mod:`repro.hardware.chimera` directly (a guard test enforces it); they
call :func:`make_topology`, which keeps the hardware family pluggable:

    >>> topo = make_topology("pegasus", size=6)
    >>> topo.num_qubits
    680

Registering a new family takes one call::

    register_topology("mytopo", MyTopology, default_size=8)

where the factory accepts ``(size, tile)`` keyword arguments (``tile``
may be ignored by families with a fixed cell shape, as Pegasus does).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.hardware.topology import (
    ChimeraTopology,
    PegasusTopology,
    Topology,
    ZephyrTopology,
)

__all__ = [
    "available_topologies",
    "make_topology",
    "register_topology",
    "resolve_family",
]

#: name -> (factory(size, tile) -> Topology, default size).
_REGISTRY: Dict[str, Tuple[Callable[..., Topology], int]] = {}


def register_topology(
    name: str,
    factory: Callable[..., Topology],
    default_size: int,
    overwrite: bool = False,
) -> None:
    """Register a topology family under ``name``.

    Args:
        name: registry key (what ``--topology`` accepts).
        factory: callable accepting ``size`` and ``tile`` keyword
            arguments and returning a :class:`Topology`.
        default_size: the size used when the caller passes none (the
            "full chip" of the family).
        overwrite: allow replacing an existing registration.

    Raises:
        ValueError: on duplicate names without ``overwrite``.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("topology name must be non-empty")
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"topology {key!r} is already registered")
    _REGISTRY[key] = (factory, default_size)


def available_topologies() -> Tuple[str, ...]:
    """The registered family names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_family(name: str) -> str:
    """Resolve a family name, unambiguous prefix, or letter code.

    ``"chimera"``, ``"chim"``, and ``"C"`` all resolve to
    ``"chimera"`` -- the lookup compact fleet specs like ``"C16,P8,Z6"``
    (:func:`repro.solvers.fleet.parse_fleet_spec`) are built on.

    Raises:
        KeyError: for unknown names or ambiguous prefixes, listing what
            is available.
    """
    key = str(name).strip().lower()
    if not key:
        raise KeyError("empty topology family name")
    if key in _REGISTRY:
        return key
    matches = [family for family in sorted(_REGISTRY) if family.startswith(key)]
    if len(matches) == 1:
        return matches[0]
    if matches:
        raise KeyError(
            f"ambiguous topology family {name!r}: matches "
            f"{', '.join(matches)}"
        )
    raise KeyError(
        f"unknown topology family {name!r}; available: "
        f"{', '.join(available_topologies())}"
    )


def make_topology(
    name: str,
    size: Optional[int] = None,
    tile: Optional[int] = None,
) -> Topology:
    """Instantiate a registered topology.

    Args:
        name: a registered family name (case-insensitive).
        size: the family size parameter (Chimera/Pegasus ``m``, Zephyr
            ``m``); None picks the family's full-chip default.
        tile: cell tile parameter for families that have one (Chimera
            and Zephyr ``t``); None picks the family default.

    Raises:
        KeyError: for unknown names, listing what is available.
    """
    key = str(name).strip().lower()
    try:
        factory, default_size = _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown topology {name!r}; available: "
            f"{', '.join(available_topologies())}"
        ) from None
    return factory(size=default_size if size is None else size, tile=tile)


def _chimera(size: int, tile: Optional[int] = None) -> ChimeraTopology:
    return ChimeraTopology(size, t=4 if tile is None else tile)


def _pegasus(size: int, tile: Optional[int] = None) -> PegasusTopology:
    # Pegasus cells are fixed 12-line blocks; `tile` is accepted for
    # factory-signature uniformity but has no free parameter.
    return PegasusTopology(size)


def _zephyr(size: int, tile: Optional[int] = None) -> ZephyrTopology:
    return ZephyrTopology(size, t=4 if tile is None else tile)


#: Full-chip defaults: C16 (2000Q), P16 (Advantage), Z15 (Advantage2).
register_topology("chimera", _chimera, default_size=16)
register_topology("pegasus", _pegasus, default_size=16)
register_topology("zephyr", _zephyr, default_size=15)
