"""Pluggable annealer topologies: Chimera, Pegasus-style, Zephyr-style.

The paper targets one fixed device -- a D-Wave 2000Q whose C16 Chimera
graph caps every workload -- but nothing in the toolchain above the
hardware layer actually needs Chimera: the embedder, scaler, fault
models, and runner only need a *working graph*, a coordinate scheme,
and a stable fingerprint.  This module factors that contract into a
:class:`Topology` interface and provides three implementations:

* :class:`ChimeraTopology` -- the 2000Q graph (Section 2, Figure 1),
  delegating to :mod:`repro.hardware.chimera`.
* :class:`PegasusTopology` -- a Pegasus-style graph (Advantage-class
  chips), built from the geometric crossing construction: each qubit is
  a length-12 segment on a vertical or horizontal wire line; segments
  couple where they cross ("internal"), where they run side by side
  with equal offsets ("odd"), and where they abut along a line
  ("external").  Boundary segments that cross nothing are trimmed,
  which reproduces the published node count 8(m-1)(3m-1) exactly
  (P16 = 5640 qubits, maximum degree 15).
* :class:`ZephyrTopology` -- a Zephyr-style graph (Advantage2-class),
  same construction with length-``2t`` segments overlapping in half
  steps: 16 internal + 2 odd + 2 external couplers per interior qubit
  (degree 20), node count ``4 t m (2m+1)`` (Z15, t=4 = 7440 qubits).

The Pegasus/Zephyr builders reproduce the published family parameters
(node counts, degrees, coupler classes) but use their own linear
numbering; they are untrimmed-nominal models of the *family*, not
serializations of a specific calibrated chip.

Concrete chips are obtained through :mod:`repro.hardware.registry`
(``make_topology("pegasus", size=16)``); everything outside
``repro/hardware/`` goes through that registry rather than importing
:mod:`repro.hardware.chimera` directly (a guard test enforces this).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.hardware.chimera import (
    DWAVE_2000Q_CELLS,
    ChimeraCoordinates,
    chimera_graph,
    coupler_dropout,
    dropout,
)

__all__ = [
    "DWAVE_2000Q_CELLS",
    "Topology",
    "ChimeraTopology",
    "PegasusTopology",
    "ZephyrTopology",
    "coupler_dropout",
    "dropout",
]

#: Offsets of Pegasus wire segments: four consecutive k's share an
#: offset, giving the three K_{4,4}-like bands per crossing block.
_PEGASUS_OFFSETS = (2, 2, 2, 2, 6, 6, 6, 6, 10, 10, 10, 10)


class Topology(ABC):
    """One annealer chip family instance: graph + coordinates + tiles.

    The contract every layer above the hardware package relies on:

    * :attr:`graph` -- the pristine (pre-dropout) working graph whose
      node labels are linear qubit indices;
    * :meth:`coordinates` / :meth:`linear` -- the coordinate scheme;
    * :meth:`tile_of` / :meth:`tiles` -- the native-cell structure, a
      2-D tiling used by occupancy rendering and per-cell yield faults;
    * :meth:`fingerprint` -- a canonical string naming the family and
      its parameters, mixed into embedding/compilation cache keys so
      two topologies can never share a cache entry.
    """

    #: Family name, e.g. ``"chimera"``; set by subclasses.
    family: str = ""

    def __init__(self) -> None:
        self._graph: Optional[nx.Graph] = None
        self._tiles: Optional[Dict[Tuple[int, int], List[int]]] = None

    # -- graph ----------------------------------------------------------
    @abstractmethod
    def build_graph(self) -> nx.Graph:
        """Construct the pristine graph (called once, then cached)."""

    @property
    def graph(self) -> nx.Graph:
        """The cached pristine graph.  Copy before mutating."""
        if self._graph is None:
            self._graph = self.build_graph()
        return self._graph

    @property
    def num_qubits(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_couplers(self) -> int:
        return self.graph.number_of_edges()

    # -- coordinates ----------------------------------------------------
    @abstractmethod
    def coordinates(self, index: int) -> Tuple[int, ...]:
        """The family coordinate of linear qubit ``index``."""

    @abstractmethod
    def linear(self, coord: Tuple[int, ...]) -> int:
        """The linear index of family coordinate ``coord``."""

    # -- native-cell structure ------------------------------------------
    @abstractmethod
    def tile_of(self, index: int) -> Tuple[int, int]:
        """The (row, col) tile a qubit belongs to.

        For Chimera a tile is a unit cell; for Pegasus/Zephyr it is the
        crossing neighborhood of one (z, w) segment block -- the local
        cluster a fabrication defect would take out together.
        """

    @property
    @abstractmethod
    def tile_shape(self) -> Tuple[int, int]:
        """(rows, cols) bounds of the tile grid."""

    def tiles(self) -> Dict[Tuple[int, int], List[int]]:
        """Map each tile to its sorted member qubits (cached)."""
        if self._tiles is None:
            grouped: Dict[Tuple[int, int], List[int]] = {}
            for node in sorted(self.graph.nodes()):
                grouped.setdefault(self.tile_of(node), []).append(node)
            self._tiles = grouped
        return self._tiles

    # -- identity -------------------------------------------------------
    @abstractmethod
    def fingerprint(self) -> str:
        """Canonical ``family:params`` string for cache keys."""

    def describe(self) -> str:
        """A one-line human summary for reports and ``--stats``."""
        return (
            f"{self.fingerprint()}: {self.num_qubits} qubits, "
            f"{self.num_couplers} couplers"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.fingerprint()}>"


class ChimeraTopology(Topology):
    """C_{m,n} Chimera with K_{t,t} unit cells (the 2000Q family)."""

    family = "chimera"

    def __init__(self, m: int = DWAVE_2000Q_CELLS, n: Optional[int] = None,
                 t: int = 4):
        super().__init__()
        if m < 1 or (n is not None and n < 1) or t < 1:
            raise ValueError(f"invalid Chimera shape ({m}, {n}, {t})")
        self.m = m
        self.n = n if n is not None else m
        self.t = t
        self._coords = ChimeraCoordinates(self.m, self.n, self.t)

    def build_graph(self) -> nx.Graph:
        return chimera_graph(self.m, self.n, self.t)

    def coordinates(self, index: int) -> Tuple[int, int, int, int]:
        return self._coords.coordinate(index)

    def linear(self, coord: Tuple[int, ...]) -> int:
        return self._coords.linear(tuple(coord))

    def tile_of(self, index: int) -> Tuple[int, int]:
        row, col, _, _ = self._coords.coordinate(index)
        return (row, col)

    @property
    def tile_shape(self) -> Tuple[int, int]:
        return (self.m, self.n)

    def fingerprint(self) -> str:
        return f"chimera:m={self.m},n={self.n},t={self.t}"


class PegasusTopology(Topology):
    """Pegasus-style P_m graph via the crossing construction.

    Coordinates are ``(u, w, k, z)``: orientation ``u`` (0 = vertical),
    perpendicular line group ``w`` in ``[0, m)``, line-in-group ``k`` in
    ``[0, 12)``, and segment ``z`` in ``[0, m-1)`` along the line.  The
    qubit ``(0, w, k, z)`` occupies vertical line ``12 w + k`` over the
    horizontal span ``[12 z + O_k, 12 z + O_k + 11]`` with the offset
    table ``O = (2,2,2,2, 6,6,6,6, 10,10,10,10)``; horizontal qubits
    mirror the roles.  Couplers: *internal* where two perpendicular
    segments cross, *odd* between same-offset neighbors ``2j``/``2j+1``
    on the same span, *external* between consecutive segments of one
    line.  Boundary lines whose segments cross nothing (positions 0, 1
    and ``12m-2``, ``12m-1``) are trimmed, landing exactly on the
    published count ``8(m-1)(3m-1)`` with maximum degree 15.
    """

    family = "pegasus"

    def __init__(self, m: int = 16):
        super().__init__()
        if m < 2:
            raise ValueError(f"Pegasus size must be >= 2, got {m}")
        self.m = m

    # Linear numbering: ((u*m + w)*12 + k)*(m-1) + z.
    def linear(self, coord: Tuple[int, ...]) -> int:
        u, w, k, z = coord
        if not (u in (0, 1) and 0 <= w < self.m and 0 <= k < 12
                and 0 <= z < self.m - 1):
            raise ValueError(f"invalid Pegasus coordinate {coord!r}")
        return ((u * self.m + w) * 12 + k) * (self.m - 1) + z

    def coordinates(self, index: int) -> Tuple[int, int, int, int]:
        span = self.m - 1
        if not 0 <= index < 2 * self.m * 12 * span:
            raise ValueError(f"qubit index {index} out of range")
        z = index % span
        k = (index // span) % 12
        w = (index // (span * 12)) % self.m
        u = index // (span * 12 * self.m)
        return (u, w, k, z)

    def _extent(self, k: int, z: int) -> Tuple[int, int]:
        start = 12 * z + _PEGASUS_OFFSETS[k]
        return start, start + 11

    def build_graph(self) -> nx.Graph:
        m = self.m
        graph = nx.Graph(family=self.family, rows=m, columns=m, tile=12)
        for u in (0, 1):
            for w in range(m):
                for k in range(12):
                    for z in range(m - 1):
                        graph.add_node(
                            self.linear((u, w, k, z)),
                            pegasus_coordinate=(u, w, k, z),
                        )
        # Internal couplers: a vertical and a horizontal segment couple
        # iff each one's line position falls inside the other's span.
        for w in range(m):
            for k in range(12):
                line = 12 * w + k  # vertical line position
                for z in range(m - 1):
                    lo, hi = self._extent(k, z)
                    for pos in range(lo, hi + 1):
                        w2, k2 = divmod(pos, 12)
                        if w2 >= m:
                            continue
                        # Horizontal segments of line `pos` covering `line`.
                        z2 = (line - _PEGASUS_OFFSETS[k2]) // 12
                        if 0 <= z2 < m - 1:
                            graph.add_edge(
                                self.linear((0, w, k, z)),
                                self.linear((1, w2, k2, z2)),
                            )
        for u in (0, 1):
            for w in range(m):
                for k in range(12):
                    for z in range(m - 1):
                        node = self.linear((u, w, k, z))
                        # Odd couplers: equal-offset neighbors 2j/2j+1.
                        if k % 2 == 0:
                            graph.add_edge(node, self.linear((u, w, k + 1, z)))
                        # External couplers: consecutive segments.
                        if z + 1 < m - 1:
                            graph.add_edge(node, self.linear((u, w, k, z + 1)))
        # Trim boundary lines that cross nothing (the real-chip trim):
        # a segment with no internal coupler can only reach its own
        # line, so the whole line is dead silicon.
        internal_degree = {node: 0 for node in graph.nodes()}
        for a, b in graph.edges():
            ua = graph.nodes[a]["pegasus_coordinate"][0]
            ub = graph.nodes[b]["pegasus_coordinate"][0]
            if ua != ub:
                internal_degree[a] += 1
                internal_degree[b] += 1
        graph.remove_nodes_from(
            [node for node, deg in internal_degree.items() if deg == 0]
        )
        return graph

    def tile_of(self, index: int) -> Tuple[int, int]:
        u, w, k, z = self.coordinates(index)
        return (z, w) if u == 0 else (w, z)

    @property
    def tile_shape(self) -> Tuple[int, int]:
        return (self.m, self.m)

    def fingerprint(self) -> str:
        return f"pegasus:m={self.m}"


class ZephyrTopology(Topology):
    """Zephyr-style Z_{m,t} graph via the crossing construction.

    Coordinates are ``(u, w, k, j, z)``: orientation ``u``, line group
    ``w`` in ``[0, 2m]``, line-in-group ``k`` in ``[0, t)``, half-step
    phase ``j`` and segment ``z`` in ``[0, m)``.  Qubit
    ``(0, w, k, j, z)`` occupies vertical line ``t w + k`` over span
    ``[2tz + tj, 2tz + tj + 2t - 1]`` -- length-``2t`` segments
    overlapping by ``t``, so every crossing sees two segments per line
    (``4t = 16`` internal couplers at t=4).  Odd couplers join the two
    overlapping segments of one line; external couplers join segments
    one full period apart.  Node count ``4 t m (2m+1)`` (Z15 = 7440),
    maximum degree ``4t + 4 = 20``; no trimming is needed because the
    half-step phases cover every line position.
    """

    family = "zephyr"

    def __init__(self, m: int = 15, t: int = 4):
        super().__init__()
        if m < 1 or t < 1:
            raise ValueError(f"invalid Zephyr shape ({m}, {t})")
        self.m = m
        self.t = t

    # Linear numbering: ((((u*(2m+1)) + w)*t + k)*2 + j)*m + z.
    def linear(self, coord: Tuple[int, ...]) -> int:
        u, w, k, j, z = coord
        if not (u in (0, 1) and 0 <= w <= 2 * self.m and 0 <= k < self.t
                and j in (0, 1) and 0 <= z < self.m):
            raise ValueError(f"invalid Zephyr coordinate {coord!r}")
        return ((((u * (2 * self.m + 1)) + w) * self.t + k) * 2 + j) * self.m + z

    def coordinates(self, index: int) -> Tuple[int, int, int, int, int]:
        m, t = self.m, self.t
        if not 0 <= index < 4 * t * m * (2 * m + 1):
            raise ValueError(f"qubit index {index} out of range")
        z = index % m
        j = (index // m) % 2
        k = (index // (m * 2)) % t
        w = (index // (m * 2 * t)) % (2 * m + 1)
        u = index // (m * 2 * t * (2 * m + 1))
        return (u, w, k, j, z)

    def _extent(self, j: int, z: int) -> Tuple[int, int]:
        start = self.t * (2 * z + j)
        return start, start + 2 * self.t - 1

    def build_graph(self) -> nx.Graph:
        m, t = self.m, self.t
        graph = nx.Graph(family=self.family, rows=m + 1, columns=m + 1,
                         tile=t)
        for u in (0, 1):
            for w in range(2 * m + 1):
                for k in range(t):
                    for j in (0, 1):
                        for z in range(m):
                            graph.add_node(
                                self.linear((u, w, k, j, z)),
                                zephyr_coordinate=(u, w, k, j, z),
                            )
        # Internal couplers: mutual-crossing test, as in Pegasus but
        # with overlapping half-step segments (two matches per line).
        for w in range(2 * m + 1):
            for k in range(t):
                line = t * w + k
                for j in (0, 1):
                    for z in range(m):
                        lo, hi = self._extent(j, z)
                        node = self.linear((0, w, k, j, z))
                        for pos in range(lo, hi + 1):
                            w2, k2 = divmod(pos, t)
                            if w2 > 2 * m:
                                continue
                            # Horizontal segments covering `line`: the
                            # half-steps s = 2z2 + j2 with
                            # t*s <= line <= t*s + 2t - 1.
                            for s in (w - 1, w):
                                if not 0 <= s < 2 * m:
                                    continue
                                graph.add_edge(
                                    node,
                                    self.linear((1, w2, k2, s % 2, s // 2)),
                                )
        for u in (0, 1):
            for w in range(2 * m + 1):
                for k in range(t):
                    for z in range(m):
                        a = self.linear((u, w, k, 0, z))
                        b = self.linear((u, w, k, 1, z))
                        # Odd couplers: overlapping half-step segments.
                        graph.add_edge(a, b)
                        if z + 1 < m:
                            nxt0 = self.linear((u, w, k, 0, z + 1))
                            graph.add_edge(b, nxt0)
                            # External couplers: one full period apart.
                            graph.add_edge(a, nxt0)
                            graph.add_edge(
                                b, self.linear((u, w, k, 1, z + 1))
                            )
        return graph

    def tile_of(self, index: int) -> Tuple[int, int]:
        u, w, k, j, z = self.coordinates(index)
        return (z, w // 2) if u == 0 else (w // 2, z)

    @property
    def tile_shape(self) -> Tuple[int, int]:
        return (self.m + 1, self.m + 1)

    def fingerprint(self) -> str:
        return f"zephyr:m={self.m},t={self.t}"
