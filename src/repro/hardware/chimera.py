"""Chimera graphs: the D-Wave 2000Q on-chip topology (Section 2, Figure 1).

A Chimera graph C_m is an m x m mesh of *unit cells*.  Each unit cell is
a complete bipartite K_{4,4}: four "vertical" qubits (orientation u=0)
and four "horizontal" qubits (u=1).  Each vertical qubit couples to its
same-position peer in the cells to the north and south; each horizontal
qubit couples to its peer east and west.  A D-Wave 2000Q is a C16 --
16 x 16 cells x 8 qubits = 2048 nominal qubits, minus fabrication
drop-out.

Qubits are numbered linearly in the D-Wave convention:
``index = ((row * n) + col) * 2t + u * t + k`` for coordinate
``(row, col, u, k)`` with tile size t = 4.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import networkx as nx

#: A D-Wave 2000Q is a C16 Chimera graph.
DWAVE_2000Q_CELLS = 16

Coordinate = Tuple[int, int, int, int]


class ChimeraCoordinates:
    """Conversions between linear qubit numbers and (row, col, u, k)."""

    def __init__(self, m: int, n: Optional[int] = None, t: int = 4):
        self.m = m
        self.n = n if n is not None else m
        self.t = t

    def linear(self, coord: Coordinate) -> int:
        row, col, u, k = coord
        self._check(coord)
        return ((row * self.n) + col) * 2 * self.t + u * self.t + k

    def coordinate(self, index: int) -> Coordinate:
        if not 0 <= index < self.m * self.n * 2 * self.t:
            raise ValueError(f"qubit index {index} out of range")
        k = index % self.t
        u = (index // self.t) % 2
        col = (index // (2 * self.t)) % self.n
        row = index // (2 * self.t * self.n)
        return (row, col, u, k)

    def _check(self, coord: Coordinate) -> None:
        row, col, u, k = coord
        if not (0 <= row < self.m and 0 <= col < self.n and u in (0, 1) and 0 <= k < self.t):
            raise ValueError(f"invalid Chimera coordinate {coord!r}")

    def unit_cell(self, row: int, col: int) -> List[int]:
        """The eight linear indices of one unit cell."""
        return [
            self.linear((row, col, u, k)) for u in (0, 1) for k in range(self.t)
        ]


def chimera_graph(m: int, n: Optional[int] = None, t: int = 4) -> nx.Graph:
    """Build a C_{m,n} Chimera graph with K_{t,t} unit cells.

    ``chimera_graph(16)`` is the D-Wave 2000Q working graph before
    drop-out.  Node labels are linear qubit indices; each node stores its
    ``chimera_coordinate`` attribute.
    """
    if n is None:
        n = m
    coords = ChimeraCoordinates(m, n, t)
    graph = nx.Graph(family="chimera", rows=m, columns=n, tile=t)
    for row in range(m):
        for col in range(n):
            for u in (0, 1):
                for k in range(t):
                    index = coords.linear((row, col, u, k))
                    graph.add_node(index, chimera_coordinate=(row, col, u, k))
    for row in range(m):
        for col in range(n):
            # Internal couplers: complete bipartite within the cell.
            for k0 in range(t):
                for k1 in range(t):
                    graph.add_edge(
                        coords.linear((row, col, 0, k0)),
                        coords.linear((row, col, 1, k1)),
                    )
            # External couplers: vertical qubits north-south,
            # horizontal qubits east-west (Figure 1).
            if row + 1 < m:
                for k in range(t):
                    graph.add_edge(
                        coords.linear((row, col, 0, k)),
                        coords.linear((row + 1, col, 0, k)),
                    )
            if col + 1 < n:
                for k in range(t):
                    graph.add_edge(
                        coords.linear((row, col, 1, k)),
                        coords.linear((row, col + 1, 1, k)),
                    )
    return graph


def dropout(
    graph: nx.Graph,
    fraction: float = 0.0,
    num_qubits: Optional[int] = None,
    seed: Optional[int] = None,
) -> nx.Graph:
    """Remove random qubits, modeling fabrication drop-out.

    The paper notes a 2000Q provides "a nominal 2048 qubits, although
    there is inevitably some drop-out".  Specify either a ``fraction`` of
    qubits to remove or an exact ``num_qubits`` count.
    """
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    if num_qubits is None:
        num_qubits = int(round(fraction * len(nodes)))
    if not 0 <= num_qubits <= len(nodes):
        raise ValueError(f"cannot drop {num_qubits} of {len(nodes)} qubits")
    removed = rng.sample(nodes, num_qubits)
    out = graph.copy()
    out.remove_nodes_from(removed)
    return out


def coupler_dropout(
    graph: nx.Graph,
    fraction: float = 0.0,
    num_couplers: Optional[int] = None,
    seed: Optional[int] = None,
) -> nx.Graph:
    """Remove random couplers, modeling fabrication coupler drop-out.

    Real units lose couplers as well as qubits; a yield model without
    dead couplers would overstate the routing freedom the embedder has.
    Specify either a ``fraction`` of couplers to remove or an exact
    ``num_couplers`` count.  Qubits are never removed, only edges.
    """
    rng = random.Random(seed)
    edges = sorted(tuple(sorted(edge)) for edge in graph.edges())
    if num_couplers is None:
        num_couplers = int(round(fraction * len(edges)))
    if not 0 <= num_couplers <= len(edges):
        raise ValueError(
            f"cannot drop {num_couplers} of {len(edges)} couplers"
        )
    removed = rng.sample(edges, num_couplers)
    out = graph.copy()
    out.remove_edges_from(removed)
    return out


def is_chimera_edge(graph: nx.Graph, u: int, v: int) -> bool:
    """True if (u, v) is a coupler in the working graph."""
    return graph.has_edge(u, v)


def odd_cycles_absent(graph: nx.Graph) -> bool:
    """Chimera graphs are bipartite (no odd cycles) -- the reason only
    NOT and DFF from Table 5 embed directly (Section 4.4)."""
    return nx.is_bipartite(graph)
