"""Technology mapping onto the richer Table 5 cells.

The paper's cell set is "the set of gates considered by default by the
ABC optimizer" and includes inverted and compound gates (NAND, NOR,
XNOR, AOI3, OAI3, AOI4, OAI4) that the word-level lowering never emits
directly.  Using them "can reduce the required qubit count at the
expense of increased compilation time" (Section 4.3.2): an AOI4 cell
costs 6 variables where the discrete NOT+OR+AND+AND network costs 10
plus three connecting nets.

This pass pattern-matches single-fanout gate clusters and rewrites:

    NOT(AND(a,b))                -> NAND(a,b)
    NOT(OR(a,b))                 -> NOR(a,b)
    NOT(XOR(a,b))                -> XNOR(a,b)
    NOT(OR(AND(a,b), c))         -> AOI3(a,b,c)
    NOT(AND(OR(a,b), c))         -> OAI3(a,b,c)
    NOT(OR(AND(a,b), AND(c,d)))  -> AOI4(a,b,c,d)
    NOT(AND(OR(a,b), OR(c,d)))   -> OAI4(a,b,c,d)

Inner gates are only absorbed when the NOT is their sole reader, so the
rewrite never duplicates logic.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

from repro.synth.netlist import Cell, Net, Netlist


def techmap(netlist: Netlist, max_passes: int = 20) -> Netlist:
    """Return a copy with compound-cell rewrites applied to fixpoint."""
    work = copy.deepcopy(netlist)
    for _ in range(max_passes):
        if not _map_pass(work):
            break
    return work


def _fanout_counts(netlist: Netlist) -> Dict[Net, int]:
    counts: Dict[Net, int] = {}
    for cell in netlist.cells.values():
        for net in cell.input_nets:
            counts[net] = counts.get(net, 0) + 1
    for port in netlist.outputs():
        for net in port.bits:
            counts[net] = counts.get(net, 0) + 1
    return counts


def _map_pass(netlist: Netlist) -> bool:
    fanout = _fanout_counts(netlist)
    by_output: Dict[Net, Cell] = {c.output_net: c for c in netlist.cells.values()}

    def absorbable(net: Net, kinds: Tuple[str, ...]) -> Optional[Cell]:
        """The cell driving ``net`` if it matches and has fanout 1."""
        cell = by_output.get(net)
        if cell is not None and cell.kind in kinds and fanout.get(net, 0) == 1:
            return cell
        return None

    for cell in list(netlist.cells.values()):
        if cell.kind != "NOT":
            continue
        inner = absorbable(cell.connections["A"], ("AND", "OR", "XOR"))
        if inner is None:
            continue
        rewrite = _match(inner, by_output, fanout)
        if rewrite is None:
            continue
        kind, connections, absorbed = rewrite
        for victim in absorbed:
            del netlist.cells[victim.name]
        del netlist.cells[cell.name]
        netlist.add_cell(kind, dict(connections, Y=cell.output_net), name=cell.name)
        return True
    return False


def _match(
    inner: Cell, by_output: Dict[Net, Cell], fanout: Dict[Net, int]
) -> Optional[Tuple[str, Dict[str, Net], List[Cell]]]:
    """Match the inner gate of a NOT against the compound patterns."""

    def absorbable(net: Net, kind: str) -> Optional[Cell]:
        cell = by_output.get(net)
        if cell is not None and cell.kind == kind and fanout.get(net, 0) == 1:
            return cell
        return None

    a_net, b_net = inner.connections["A"], inner.connections["B"]
    if inner.kind == "XOR":
        return ("XNOR", {"A": a_net, "B": b_net}, [inner])

    if inner.kind == "OR":
        and_a, and_b = absorbable(a_net, "AND"), absorbable(b_net, "AND")
        if and_a is not None and and_b is not None:
            return (
                "AOI4",
                {
                    "A": and_a.connections["A"],
                    "B": and_a.connections["B"],
                    "C": and_b.connections["A"],
                    "D": and_b.connections["B"],
                },
                [inner, and_a, and_b],
            )
        if and_a is not None:
            return (
                "AOI3",
                {
                    "A": and_a.connections["A"],
                    "B": and_a.connections["B"],
                    "C": b_net,
                },
                [inner, and_a],
            )
        if and_b is not None:
            return (
                "AOI3",
                {
                    "A": and_b.connections["A"],
                    "B": and_b.connections["B"],
                    "C": a_net,
                },
                [inner, and_b],
            )
        return ("NOR", {"A": a_net, "B": b_net}, [inner])

    if inner.kind == "AND":
        or_a, or_b = absorbable(a_net, "OR"), absorbable(b_net, "OR")
        if or_a is not None and or_b is not None:
            return (
                "OAI4",
                {
                    "A": or_a.connections["A"],
                    "B": or_a.connections["B"],
                    "C": or_b.connections["A"],
                    "D": or_b.connections["B"],
                },
                [inner, or_a, or_b],
            )
        if or_a is not None:
            return (
                "OAI3",
                {
                    "A": or_a.connections["A"],
                    "B": or_a.connections["B"],
                    "C": b_net,
                },
                [inner, or_a],
            )
        if or_b is not None:
            return (
                "OAI3",
                {
                    "A": or_b.connections["A"],
                    "B": or_b.connections["B"],
                    "C": a_net,
                },
                [inner, or_b],
            )
        return ("NAND", {"A": a_net, "B": b_net}, [inner])

    return None
