"""Netlist optimization: the ABC role in the paper's flow.

Yosys hands its netlist to ABC for logic optimization before emitting
EDIF.  Our equivalents, run to a fixpoint:

- constant propagation (``AND(x, GND) -> GND``, ``MUX`` with constant
  select, cells with fully-constant inputs, ...),
- wire aliasing (``AND(x, VCC) -> x``), with alias chains resolved
  through all cell connections and port bits,
- double-inverter removal (``NOT(NOT(x)) -> x``),
- common-subexpression elimination (structurally identical cells share
  one output), and
- dead-cell elimination (anything not transitively driving an output
  port disappears -- every qubit matters on a 2048-qubit machine).

All passes preserve the input/output behaviour of the netlist, which the
test suite checks by differential simulation against the unoptimized
circuit.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional, Tuple

from repro.ising.cells import CELL_LIBRARY
from repro.synth.netlist import CONSTANT_CELLS, Cell, Net, Netlist


def optimize(netlist: Netlist, max_passes: int = 50) -> Netlist:
    """Return an optimized copy of ``netlist``."""
    work = copy.deepcopy(netlist)
    for _ in range(max_passes):
        changed = _constant_and_alias_pass(work)
        changed |= _cse_pass(work)
        if not changed:
            break
    _dead_cell_pass(work)
    return work


# ----------------------------------------------------------------------
# Constant propagation + aliasing
# ----------------------------------------------------------------------
def _constant_and_alias_pass(netlist: Netlist) -> bool:
    constants: Dict[Net, bool] = {}
    not_of: Dict[Net, Net] = {}  # output net -> input net for NOT cells
    for cell in netlist.cells.values():
        if cell.kind in CONSTANT_CELLS:
            constants[cell.output_net] = CONSTANT_CELLS[cell.kind]

    aliases: Dict[Net, Net] = {}
    removals = []
    const_cells: Dict[bool, Net] = {}
    for value, net in (
        (CONSTANT_CELLS[c.kind], c.output_net)
        for c in netlist.cells.values()
        if c.kind in CONSTANT_CELLS
    ):
        const_cells.setdefault(value, net)

    def const_net(value: bool) -> Net:
        if value not in const_cells:
            net = netlist.new_net()
            netlist.add_cell("VCC" if value else "GND", {"Y": net})
            const_cells[value] = net
            constants[net] = value
        return const_cells[value]

    changed = False
    try:
        ordered = netlist.topological_cells()
    except Exception:
        ordered = list(netlist.cells.values())
    for cell in ordered:
        if cell.kind in CONSTANT_CELLS or cell.is_sequential:
            continue
        result = _fold_cell(cell, constants, not_of)
        if result is None:
            if cell.kind == "NOT":
                not_of[cell.output_net] = cell.connections["A"]
            continue
        kind, payload = result
        if kind == "const":
            constants[cell.output_net] = payload
            aliases[cell.output_net] = const_net(payload)
            removals.append(cell.name)
        elif kind == "alias":
            aliases[cell.output_net] = payload
            if payload in constants:
                constants[cell.output_net] = constants[payload]
            removals.append(cell.name)
        elif kind == "rewrite":
            new_kind, connections = payload
            del netlist.cells[cell.name]
            netlist.add_cell(new_kind, connections, name=cell.name)
        changed = True

    for name in removals:
        del netlist.cells[name]
    if aliases:
        _apply_aliases(netlist, aliases)
    return changed


def _fold_cell(
    cell: Cell, constants: Dict[Net, bool], not_of: Dict[Net, Net]
) -> Optional[Tuple[str, object]]:
    """Decide a simplification for one cell, or None.

    Returns ("const", value) / ("alias", net) / ("rewrite", (kind, conns)).
    """
    kind = cell.kind
    conns = cell.connections
    values = {p: constants.get(conns[p]) for p in cell.input_ports}

    if all(v is not None for v in values.values()):
        spec = CELL_LIBRARY[kind]
        args = [values[p] for p in spec.inputs]
        return ("const", bool(spec.function(*args)))

    if kind == "NOT":
        inner = not_of.get(conns["A"])
        if inner is not None:
            return ("alias", inner)
        return None

    if kind in ("AND", "OR", "XOR", "NAND", "NOR", "XNOR"):
        a, b = conns["A"], conns["B"]
        va, vb = values["A"], values["B"]
        folded = _fold_binary(kind, a, b, va, vb)
        if folded is not None and folded[0] == "rewrite":
            new_kind, new_conns = folded[1]
            new_conns = dict(new_conns, Y=conns["Y"])
            return ("rewrite", (new_kind, new_conns))
        return folded

    if kind == "MUX":
        select, a, b = conns["S"], conns["A"], conns["B"]
        vs = values["S"]
        if vs is True:
            return ("alias", b)
        if vs is False:
            return ("alias", a)
        if a == b:
            return ("alias", a)
        va, vb = values["A"], values["B"]
        if va is False and vb is True:
            return ("alias", select)
        if va is True and vb is False:
            return ("rewrite", ("NOT", {"A": select, "Y": conns["Y"]}))
        if va is False:
            return ("rewrite", ("AND", {"A": select, "B": b, "Y": conns["Y"]}))
        # Other constant-arm cases need an extra inverter, which a single
        # cell rewrite cannot express; the builder already folds them at
        # construction time.
        return None

    return None


def _fold_binary(kind: str, a: Net, b: Net, va, vb) -> Optional[Tuple[str, object]]:
    same = a == b
    if kind == "AND":
        if va is False or vb is False:
            return ("const", False)
        if va is True:
            return ("alias", b)
        if vb is True:
            return ("alias", a)
        if same:
            return ("alias", a)
    elif kind == "OR":
        if va is True or vb is True:
            return ("const", True)
        if va is False:
            return ("alias", b)
        if vb is False:
            return ("alias", a)
        if same:
            return ("alias", a)
    elif kind == "XOR":
        if same:
            return ("const", False)
        if va is False:
            return ("alias", b)
        if vb is False:
            return ("alias", a)
        if va is True:
            return ("rewrite", ("NOT", {"A": b, "Y": None}))
        if vb is True:
            return ("rewrite", ("NOT", {"A": a, "Y": None}))
    elif kind == "XNOR":
        if same:
            return ("const", True)
        if va is True:
            return ("alias", b)
        if vb is True:
            return ("alias", a)
        if va is False:
            return ("rewrite", ("NOT", {"A": b, "Y": None}))
        if vb is False:
            return ("rewrite", ("NOT", {"A": a, "Y": None}))
    elif kind == "NAND":
        if va is False or vb is False:
            return ("const", True)
        if va is True:
            return ("rewrite", ("NOT", {"A": b, "Y": None}))
        if vb is True:
            return ("rewrite", ("NOT", {"A": a, "Y": None}))
    elif kind == "NOR":
        if va is True or vb is True:
            return ("const", False)
        if va is False:
            return ("rewrite", ("NOT", {"A": b, "Y": None}))
        if vb is False:
            return ("rewrite", ("NOT", {"A": a, "Y": None}))
    return None


def _apply_aliases(netlist: Netlist, aliases: Dict[Net, Net]) -> None:
    def resolve(net: Net) -> Net:
        seen = set()
        while net in aliases:
            if net in seen:
                raise RuntimeError("alias cycle")
            seen.add(net)
            net = aliases[net]
        return net

    for cell in netlist.cells.values():
        cell.connections = {p: resolve(n) for p, n in cell.connections.items()}
    for port in netlist.ports.values():
        port.bits = [resolve(n) for n in port.bits]
    for name, bits in netlist.net_names.items():
        netlist.net_names[name] = [resolve(n) for n in bits]


# ----------------------------------------------------------------------
# Common-subexpression elimination
# ----------------------------------------------------------------------
_COMMUTATIVE = {"AND", "OR", "XOR", "NAND", "NOR", "XNOR"}


def _cse_pass(netlist: Netlist) -> bool:
    seen: Dict[Tuple, Net] = {}
    aliases: Dict[Net, Net] = {}
    removals = []
    for cell in netlist.cells.values():
        if cell.is_sequential:
            continue
        if cell.kind in CONSTANT_CELLS:
            key: Tuple = (cell.kind,)
        elif cell.kind in _COMMUTATIVE:
            key = (cell.kind, tuple(sorted(cell.input_nets)))
        else:
            key = (cell.kind, cell.input_nets)
        if key in seen:
            aliases[cell.output_net] = seen[key]
            removals.append(cell.name)
        else:
            seen[key] = cell.output_net
    for name in removals:
        del netlist.cells[name]
    if aliases:
        _apply_aliases(netlist, aliases)
    return bool(removals)


# ----------------------------------------------------------------------
# Dead-cell elimination
# ----------------------------------------------------------------------
def _dead_cell_pass(netlist: Netlist) -> bool:
    live_nets = set()
    for port in netlist.outputs():
        live_nets.update(port.bits)
    by_output: Dict[Net, Cell] = {c.output_net: c for c in netlist.cells.values()}

    worklist = list(live_nets)
    live_cells = set()
    while worklist:
        net = worklist.pop()
        cell = by_output.get(net)
        if cell is None or cell.name in live_cells:
            continue
        live_cells.add(cell.name)
        for input_net in cell.input_nets:
            if input_net not in live_nets:
                live_nets.add(input_net)
                worklist.append(input_net)
        if cell.is_sequential:
            d_net = cell.connections["D"]
            if d_net not in live_nets:
                live_nets.add(d_net)
                worklist.append(d_net)

    dead = [name for name in netlist.cells if name not in live_cells]
    for name in dead:
        del netlist.cells[name]
    return bool(dead)
