"""Logic synthesis: the Yosys + ABC stand-in (Section 4.2).

The paper compiles Verilog to a gate-level netlist with Yosys, optimized
by ABC over its default cell set.  This package provides the same
functionality:

- :mod:`repro.synth.netlist` -- the gate-level IR (cells, nets, ports).
- :mod:`repro.synth.lowering` -- a word-level circuit builder (adders,
  multipliers, comparators, muxes, shifters) used by the Verilog
  elaborator to lower expressions to gates.
- :mod:`repro.synth.opt` -- netlist optimization: constant propagation,
  dead-gate elimination, double-inverter removal, common-subexpression
  sharing (the ABC role).
- :mod:`repro.synth.techmap` -- pattern rewrites into the richer Table 5
  cells (NAND/NOR/XNOR/AOI/OAI) to reduce cell count.
- :mod:`repro.synth.simulate` -- a forward netlist simulator, used to
  verify compilations and to check proposed NP solutions in polynomial
  time (Section 5.1).
- :mod:`repro.synth.unroll` -- time unrolling of sequential logic
  (Section 4.3.3): trade the time dimension for space.
"""

from repro.synth.netlist import Cell, Netlist, Port, PortDirection, NetlistError
from repro.synth.lowering import CircuitBuilder
from repro.synth.opt import optimize
from repro.synth.techmap import techmap
from repro.synth.simulate import NetlistSimulator, SimulationError
from repro.synth.unroll import unroll

__all__ = [
    "Cell",
    "Netlist",
    "NetlistError",
    "Port",
    "PortDirection",
    "CircuitBuilder",
    "optimize",
    "techmap",
    "NetlistSimulator",
    "SimulationError",
    "unroll",
]
