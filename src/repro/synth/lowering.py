"""Word-level to gate-level lowering.

The Verilog elaborator does not emit gates directly; it drives this
:class:`CircuitBuilder`, which knows how to lower multi-bit arithmetic,
comparisons, shifts, and multiplexing onto the standard-cell set
(ripple-carry adders, shift-add multipliers, restoring dividers, barrel
shifters, mux trees).  Bit vectors are lists of net ids, least
significant bit first.

The builder constant-folds locally as it goes (``AND(x, 0) -> 0``,
``MUX`` with a constant select, ...), which keeps the emitted netlists
small before the global optimizer runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.synth.netlist import Net, Netlist, NetlistError

Bits = List[Net]


class CircuitBuilder:
    """Build combinational/sequential logic in a netlist."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._const: Dict[bool, Net] = {}
        #: Net-level constant knowledge for local folding.
        self._const_value: Dict[Net, bool] = {}
        #: Structural hashing: (kind, input nets) -> output net.
        self._cse: Dict[Tuple, Net] = {}

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------
    def const_bit(self, value: bool) -> Net:
        value = bool(value)
        if value not in self._const:
            net = self.netlist.new_net()
            self.netlist.add_cell("VCC" if value else "GND", {"Y": net})
            self._const[value] = net
            self._const_value[net] = value
        return self._const[value]

    def constant(self, value: int, width: int) -> Bits:
        if value < 0:
            value &= (1 << width) - 1
        return [self.const_bit(bool((value >> i) & 1)) for i in range(width)]

    def value_of(self, net: Net) -> Optional[bool]:
        """The net's constant value if known, else None."""
        return self._const_value.get(net)

    # ------------------------------------------------------------------
    # Single-bit gates (with local folding)
    # ------------------------------------------------------------------
    def _emit(self, kind: str, connections: Dict[str, Net]) -> Net:
        key = (kind,) + tuple(sorted(connections.items()))
        if key in self._cse:
            return self._cse[key]
        out = self.netlist.new_net()
        self.netlist.add_cell(kind, {**connections, _OUTPUT[kind]: out})
        self._cse[key] = out
        return out

    def not_(self, a: Net) -> Net:
        av = self.value_of(a)
        if av is not None:
            return self.const_bit(not av)
        return self._emit("NOT", {"A": a})

    def and_(self, a: Net, b: Net) -> Net:
        av, bv = self.value_of(a), self.value_of(b)
        if av is False or bv is False:
            return self.const_bit(False)
        if av is True:
            return b
        if bv is True:
            return a
        if a == b:
            return a
        return self._emit("AND", {"A": a, "B": b})

    def or_(self, a: Net, b: Net) -> Net:
        av, bv = self.value_of(a), self.value_of(b)
        if av is True or bv is True:
            return self.const_bit(True)
        if av is False:
            return b
        if bv is False:
            return a
        if a == b:
            return a
        return self._emit("OR", {"A": a, "B": b})

    def xor_(self, a: Net, b: Net) -> Net:
        av, bv = self.value_of(a), self.value_of(b)
        if a == b:
            return self.const_bit(False)
        if av is not None and bv is not None:
            return self.const_bit(av != bv)
        if av is False:
            return b
        if bv is False:
            return a
        if av is True:
            return self.not_(b)
        if bv is True:
            return self.not_(a)
        return self._emit("XOR", {"A": a, "B": b})

    def xnor_(self, a: Net, b: Net) -> Net:
        return self.not_(self.xor_(a, b))

    def nand_(self, a: Net, b: Net) -> Net:
        return self.not_(self.and_(a, b))

    def nor_(self, a: Net, b: Net) -> Net:
        return self.not_(self.or_(a, b))

    def mux_(self, select: Net, when0: Net, when1: Net) -> Net:
        """Table 5's 2:1 MUX: Y = select ? when1 : when0."""
        sv = self.value_of(select)
        if sv is True:
            return when1
        if sv is False:
            return when0
        if when0 == when1:
            return when0
        w0, w1 = self.value_of(when0), self.value_of(when1)
        if w0 is False and w1 is True:
            return select
        if w0 is True and w1 is False:
            return self.not_(select)
        if w0 is False:
            return self.and_(select, when1)
        if w0 is True:
            return self.or_(self.not_(select), when1)
        if w1 is False:
            return self.and_(self.not_(select), when0)
        if w1 is True:
            return self.or_(select, when0)
        return self._emit("MUX", {"S": select, "A": when0, "B": when1})

    def dff(self, d: Net, negedge: bool = False) -> Net:
        """A flip-flop; no folding (state must stay state)."""
        out = self.netlist.new_net()
        kind = "DFF_N" if negedge else "DFF_P"
        self.netlist.add_cell(kind, {"D": d, "Q": out})
        return out

    # ------------------------------------------------------------------
    # Vector bit operations
    # ------------------------------------------------------------------
    def not_vec(self, a: Bits) -> Bits:
        return [self.not_(bit) for bit in a]

    def and_vec(self, a: Bits, b: Bits) -> Bits:
        return [self.and_(x, y) for x, y in self._zip(a, b)]

    def or_vec(self, a: Bits, b: Bits) -> Bits:
        return [self.or_(x, y) for x, y in self._zip(a, b)]

    def xor_vec(self, a: Bits, b: Bits) -> Bits:
        return [self.xor_(x, y) for x, y in self._zip(a, b)]

    def xnor_vec(self, a: Bits, b: Bits) -> Bits:
        return [self.xnor_(x, y) for x, y in self._zip(a, b)]

    def mux_vec(self, select: Net, when0: Bits, when1: Bits) -> Bits:
        return [self.mux_(select, x, y) for x, y in self._zip(when0, when1)]

    def dff_vec(self, d: Bits, negedge: bool = False) -> Bits:
        return [self.dff(bit, negedge) for bit in d]

    @staticmethod
    def _zip(a: Bits, b: Bits):
        if len(a) != len(b):
            raise NetlistError(f"width mismatch: {len(a)} vs {len(b)}")
        return zip(a, b)

    def extend(self, a: Bits, width: int, signed: bool = False) -> Bits:
        """Zero- or sign-extend (or truncate) to ``width`` bits."""
        if width <= len(a):
            return list(a[:width])
        fill = a[-1] if (signed and a) else self.const_bit(False)
        return list(a) + [fill] * (width - len(a))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def _reduce(self, op, bits: Bits) -> Net:
        if not bits:
            raise NetlistError("reduction of empty vector")
        work = list(bits)
        while len(work) > 1:  # balanced tree for shallow depth
            nxt = []
            for i in range(0, len(work) - 1, 2):
                nxt.append(op(work[i], work[i + 1]))
            if len(work) % 2:
                nxt.append(work[-1])
            work = nxt
        return work[0]

    def reduce_and(self, bits: Bits) -> Net:
        return self._reduce(self.and_, bits)

    def reduce_or(self, bits: Bits) -> Net:
        return self._reduce(self.or_, bits)

    def reduce_xor(self, bits: Bits) -> Net:
        return self._reduce(self.xor_, bits)

    def to_bool(self, bits: Bits) -> Net:
        """Verilog truthiness: non-zero."""
        return self.reduce_or(bits)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def full_adder(self, a: Net, b: Net, cin: Net) -> Tuple[Net, Net]:
        axb = self.xor_(a, b)
        total = self.xor_(axb, cin)
        cout = self.or_(self.and_(a, b), self.and_(cin, axb))
        return total, cout

    def add(self, a: Bits, b: Bits, cin: Optional[Net] = None) -> Tuple[Bits, Net]:
        """Ripple-carry addition; returns (sum, carry_out)."""
        if cin is None:
            cin = self.const_bit(False)
        out: Bits = []
        carry = cin
        for x, y in self._zip(a, b):
            total, carry = self.full_adder(x, y, carry)
            out.append(total)
        return out, carry

    def sub(self, a: Bits, b: Bits) -> Tuple[Bits, Net]:
        """Two's-complement subtraction; returns (difference, carry_out).

        carry_out == 1 exactly when no borrow occurred (a >= b unsigned).
        """
        return self.add(a, self.not_vec(b), self.const_bit(True))

    def neg(self, a: Bits) -> Bits:
        zero = self.constant(0, len(a))
        diff, _ = self.sub(zero, a)
        return diff

    def mul(self, a: Bits, b: Bits, width: Optional[int] = None) -> Bits:
        """Shift-add array multiplier, truncated to ``width`` bits."""
        if width is None:
            width = len(a) + len(b)
        acc = self.constant(0, width)
        for i, select in enumerate(b):
            if i >= width:
                break
            if self.value_of(select) is False:
                continue
            # Partial product: (a << i) masked by bit i of b.
            shifted = self.constant(0, i) + list(a)
            shifted = self.extend(shifted, width)
            partial = [self.and_(bit, select) for bit in shifted]
            acc, _ = self.add(acc, partial)
        return acc

    def divmod_unsigned(self, a: Bits, b: Bits) -> Tuple[Bits, Bits]:
        """Restoring division; returns (quotient, remainder).

        Division by zero yields all-ones quotient and ``a`` as remainder,
        matching common hardware conventions.
        """
        width = max(len(a), len(b))
        a = self.extend(a, width)
        b_ext = self.extend(b, width + 1)
        remainder = self.constant(0, width + 1)
        quotient: Bits = [self.const_bit(False)] * width
        for i in reversed(range(width)):
            remainder = [a[i]] + remainder[:width]
            diff, carry = self.sub(remainder, b_ext)
            fits = carry  # carry out == no borrow == remainder >= b
            quotient[i] = fits
            remainder = self.mux_vec(fits, remainder, diff)
        by_zero = self.not_(self.to_bool(b))
        ones = self.constant((1 << width) - 1, width)
        quotient = self.mux_vec(by_zero, quotient, ones)
        remainder = self.mux_vec(by_zero, remainder[:width], self.extend(a, width))
        return quotient, remainder

    # ------------------------------------------------------------------
    # Comparisons (unsigned)
    # ------------------------------------------------------------------
    def eq(self, a: Bits, b: Bits) -> Net:
        return self.not_(self.reduce_or(self.xor_vec(a, b)))

    def ne(self, a: Bits, b: Bits) -> Net:
        return self.reduce_or(self.xor_vec(a, b))

    def lt(self, a: Bits, b: Bits) -> Net:
        _, carry = self.sub(a, b)
        return self.not_(carry)

    def le(self, a: Bits, b: Bits) -> Net:
        return self.not_(self.lt(b, a))

    def gt(self, a: Bits, b: Bits) -> Net:
        return self.lt(b, a)

    def ge(self, a: Bits, b: Bits) -> Net:
        _, carry = self.sub(a, b)
        return carry

    # ------------------------------------------------------------------
    # Shifts
    # ------------------------------------------------------------------
    def shl_const(self, a: Bits, amount: int) -> Bits:
        width = len(a)
        if amount >= width:
            return self.constant(0, width)
        return self.constant(0, amount) + list(a[: width - amount])

    def shr_const(self, a: Bits, amount: int) -> Bits:
        width = len(a)
        if amount >= width:
            return self.constant(0, width)
        return list(a[amount:]) + [self.const_bit(False)] * amount

    def shl(self, a: Bits, amount: Bits) -> Bits:
        """Barrel shifter: logical shift left by a variable amount."""
        return self._barrel(a, amount, self.shl_const)

    def shr(self, a: Bits, amount: Bits) -> Bits:
        return self._barrel(a, amount, self.shr_const)

    def _barrel(self, a: Bits, amount: Bits, shift_by) -> Bits:
        result = list(a)
        width = len(a)
        for stage, select in enumerate(amount):
            step = 1 << stage
            if step >= width:
                # Any set high-order amount bit zeroes the result.
                zero = self.constant(0, width)
                result = self.mux_vec(select, result, zero)
            else:
                result = self.mux_vec(select, result, shift_by(result, step))
        return result


#: Output port of each cell kind used by the builder.
_OUTPUT = {
    "NOT": "Y",
    "AND": "Y",
    "OR": "Y",
    "NAND": "Y",
    "NOR": "Y",
    "XOR": "Y",
    "XNOR": "Y",
    "MUX": "Y",
    "AOI3": "Y",
    "OAI3": "Y",
    "AOI4": "Y",
    "OAI4": "Y",
}
