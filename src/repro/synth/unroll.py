"""Time unrolling of sequential logic (Section 4.3.3).

A quadratic pseudo-Boolean function is a pure function, but Verilog
programs can be stateful.  The paper's solution: "statically unroll the
code, replicating the entire program for each time step ... with the
outputs of one time step serving as the inputs to the subsequent time
step."  A D flip-flop instantiated at time t forwards its Q output to
the D input of the same flip-flop at time t+1; because time is discrete,
clock edges are ignored.

``unroll(netlist, steps)`` produces a purely combinational netlist in
which every input port ``x`` becomes ``x@0 .. x@{steps-1}``, every
output ``y`` likewise, and each flip-flop's initial state is exposed as
an input port ``<cell>@init`` (or tied to ground with
``initial_value=0``).  Trading time for space this way "exacts a heavy
toll in qubit count", which is precisely what the Listing 3 counter
benchmark measures.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.synth.netlist import Net, Netlist, NetlistError, PortDirection

#: Port names treated as clocks and dropped during unrolling.
CLOCK_NAMES = ("clk", "clock", "ck")


def unroll(
    netlist: Netlist,
    steps: int,
    clock_ports: Optional[Iterable[str]] = None,
    initial_value: Optional[int] = None,
) -> Netlist:
    """Unroll a sequential netlist over ``steps`` discrete time steps.

    Args:
        netlist: the circuit to unroll (combinational circuits pass
            through as a single step).
        steps: how many time steps to replicate; this is the
            "user-specified final time" bound of Section 4.3.3.
        clock_ports: names of clock inputs to drop; defaults to any
            input named like a clock (``clk``, ``clock``, ``ck``).
        initial_value: if given, every flip-flop starts at this bit
            value (0 or 1); if None, each flip-flop's initial state
            becomes an input port named ``<cell>@init`` so the annealer
            may solve for it.

    Returns:
        A combinational :class:`Netlist` named ``<name>@<steps>``.
    """
    if steps < 1:
        raise NetlistError("steps must be >= 1")
    if clock_ports is None:
        clock_ports = [
            p.name
            for p in netlist.inputs()
            if p.name.lower() in CLOCK_NAMES and p.width == 1
        ]
    clock_set = set(clock_ports)
    for name in clock_set:
        if name not in netlist.ports:
            raise NetlistError(f"clock port {name!r} does not exist")

    out = Netlist(f"{netlist.name}@{steps}")
    dffs = [c for c in netlist.cells.values() if c.is_sequential]

    # Initial flip-flop state: input ports or constants.
    init_nets: Dict[str, Net] = {}
    if initial_value is None:
        for dff in dffs:
            net = out.new_net()
            out.add_port(f"{dff.name}@init", PortDirection.INPUT, [net])
            init_nets[dff.name] = net
    else:
        if initial_value not in (0, 1):
            raise NetlistError("initial_value must be 0 or 1")
        kind = "VCC" if initial_value else "GND"
        const = out.new_net()
        out.add_cell(kind, {"Y": const})
        for dff in dffs:
            init_nets[dff.name] = const

    # Q of step t comes from D of step t-1 (or the initial state).
    prev_d_nets: Dict[str, Net] = dict(init_nets)

    for t in range(steps):
        mapping: Dict[Net, Net] = {}

        def map_net(net: Net) -> Net:
            if net not in mapping:
                mapping[net] = out.new_net()
            return mapping[net]

        # Pre-wire flip-flop outputs to the previous step's D nets.
        for dff in dffs:
            mapping[dff.connections["Q"]] = prev_d_nets[dff.name]

        for port in netlist.inputs():
            if port.name in clock_set:
                continue
            out.add_port(
                f"{port.name}@{t}",
                PortDirection.INPUT,
                [map_net(n) for n in port.bits],
            )
        for cell in netlist.cells.values():
            if cell.is_sequential:
                continue
            out.add_cell(
                cell.kind,
                {p: map_net(n) for p, n in cell.connections.items()},
                name=f"{cell.name}@{t}",
            )
        for port in netlist.outputs():
            out.add_port(
                f"{port.name}@{t}",
                PortDirection.OUTPUT,
                [map_net(n) for n in port.bits],
            )
        prev_d_nets = {
            dff.name: map_net(dff.connections["D"]) for dff in dffs
        }

    out.validate()
    return out
