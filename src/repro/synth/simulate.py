"""Forward netlist simulation.

Running compiled programs forward on classical hardware is half of the
paper's methodology: by the definition of NP, proposed solutions pulled
out of the annealer can be *verified* in polynomial time by evaluating
the verifier circuit forward (Section 5.2).  This simulator is that
polynomial-time evaluator, and also serves as the differential-testing
oracle for the whole synthesis flow.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.ising.cells import CELL_LIBRARY
from repro.synth.netlist import CONSTANT_CELLS, Cell, Net, Netlist


class SimulationError(Exception):
    """Missing input values or structural problems during simulation."""


class NetlistSimulator:
    """Evaluate a netlist on concrete inputs.

    Combinational circuits use :meth:`evaluate`.  Sequential circuits
    (with flip-flops) use :meth:`reset` then repeated :meth:`step` calls,
    one per clock cycle; state lives in the flip-flop outputs.
    """

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._order = netlist.topological_cells()
        self._state: Dict[Net, bool] = {}
        self.reset()

    # ------------------------------------------------------------------
    def reset(self, initial_state: bool = False) -> None:
        """Set every flip-flop output to ``initial_state``."""
        self._state = {}
        for cell in self.netlist.cells.values():
            if cell.is_sequential:
                self._state[cell.connections["Q"]] = initial_state

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate combinationally; returns port-name -> integer value.

        Sequential circuits may also be evaluated: flip-flop outputs hold
        their current state and are *not* clocked.
        """
        nets = self._input_nets(inputs)
        nets.update(self._state)
        self._propagate(nets)
        return self._read_outputs(nets)

    def step(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """One clock cycle: evaluate, then latch every flip-flop.

        Clock ports are ignored if present in ``inputs`` -- the paper's
        discrete-time semantics ("clock edges are ignored, and a D is
        always propagated to the subsequent time step's Q",
        Section 4.3.3).
        """
        nets = self._input_nets(inputs)
        nets.update(self._state)
        self._propagate(nets)
        outputs = self._read_outputs(nets)
        for cell in self.netlist.cells.values():
            if cell.is_sequential:
                self._state[cell.connections["Q"]] = nets[cell.connections["D"]]
        return outputs

    def run(self, input_sequence: List[Mapping[str, int]]) -> List[Dict[str, int]]:
        """Clock through a sequence of input maps; returns per-cycle outputs."""
        return [self.step(inputs) for inputs in input_sequence]

    # ------------------------------------------------------------------
    def _input_nets(self, inputs: Mapping[str, int]) -> Dict[Net, bool]:
        nets: Dict[Net, bool] = {}
        for port in self.netlist.inputs():
            if port.name not in inputs:
                raise SimulationError(f"missing value for input {port.name!r}")
            value = int(inputs[port.name])
            if value < 0:
                value &= (1 << port.width) - 1
            if value >= (1 << port.width):
                raise SimulationError(
                    f"value {value} does not fit {port.width}-bit input {port.name!r}"
                )
            for i, net in enumerate(port.bits):
                nets[net] = bool((value >> i) & 1)
        unknown = set(inputs) - {p.name for p in self.netlist.inputs()}
        if unknown:
            raise SimulationError(f"not input ports: {sorted(unknown)}")
        return nets

    def _propagate(self, nets: Dict[Net, bool]) -> None:
        for cell in self._order:
            if cell.is_sequential:
                continue  # Q values come from state
            nets[cell.output_net] = _evaluate_cell(cell, nets)

    def _read_outputs(self, nets: Dict[Net, bool]) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for port in self.netlist.outputs():
            value = 0
            for i, net in enumerate(port.bits):
                if net not in nets:
                    raise SimulationError(
                        f"output {port.name}[{i}] never computed (net {net})"
                    )
                value |= int(nets[net]) << i
            out[port.name] = value
        return out


def _evaluate_cell(cell: Cell, nets: Mapping[Net, bool]) -> bool:
    if cell.kind in CONSTANT_CELLS:
        return CONSTANT_CELLS[cell.kind]
    spec = CELL_LIBRARY[cell.kind]
    try:
        args = [nets[cell.connections[p]] for p in spec.inputs]
    except KeyError as exc:
        raise SimulationError(
            f"cell {cell.name} input net {exc} has no value (cycle?)"
        ) from exc
    return bool(spec.function(*args))
