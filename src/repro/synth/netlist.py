"""Gate-level netlist IR.

A :class:`Netlist` is "a precise specification of gates and the wires
that connect them" (Section 4.2).  Nets are single-bit and identified by
small integers; multi-bit signals are lists of net ids, most-significant
bit last (index i is bit i).  Cells are instances of the standard-cell
library in :mod:`repro.ising.cells`, plus the pseudo-cells ``GND`` and
``VCC`` that drive constant nets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ising.cells import CELL_LIBRARY

#: Pseudo-cells: single-output constant drivers (Section 4.3.4).
CONSTANT_CELLS = {"GND": False, "VCC": True}

Net = int


class NetlistError(Exception):
    """Structural problem: multiple drivers, missing ports, bad cell type."""


class PortDirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"


@dataclass
class Port:
    """A module-level port: a named, directed bit vector."""

    name: str
    direction: PortDirection
    bits: List[Net]

    @property
    def width(self) -> int:
        return len(self.bits)


@dataclass
class Cell:
    """A gate instance: a cell type plus port-to-net connections."""

    kind: str
    name: str
    connections: Dict[str, Net]

    @property
    def output_port(self) -> str:
        if self.kind in CONSTANT_CELLS:
            return "Y"
        return CELL_LIBRARY[self.kind].output

    @property
    def output_net(self) -> Net:
        return self.connections[self.output_port]

    @property
    def input_ports(self) -> Tuple[str, ...]:
        if self.kind in CONSTANT_CELLS:
            return ()
        return CELL_LIBRARY[self.kind].inputs

    @property
    def input_nets(self) -> Tuple[Net, ...]:
        return tuple(self.connections[p] for p in self.input_ports)

    @property
    def is_sequential(self) -> bool:
        return self.kind not in CONSTANT_CELLS and CELL_LIBRARY[self.kind].is_sequential


class Netlist:
    """A flat, single-module gate-level circuit."""

    def __init__(self, name: str):
        self.name = name
        self.ports: Dict[str, Port] = {}
        self.cells: Dict[str, Cell] = {}
        self.net_names: Dict[str, List[Net]] = {}
        self._next_net: Net = 0
        self._next_cell: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def new_net(self) -> Net:
        net = self._next_net
        self._next_net += 1
        return net

    def new_nets(self, width: int) -> List[Net]:
        return [self.new_net() for _ in range(width)]

    def add_port(
        self, name: str, direction: PortDirection, bits: Sequence[Net]
    ) -> Port:
        if name in self.ports:
            raise NetlistError(f"duplicate port {name!r}")
        port = Port(name, direction, list(bits))
        self.ports[name] = port
        self.net_names.setdefault(name, list(bits))
        return port

    def add_cell(
        self, kind: str, connections: Dict[str, Net], name: Optional[str] = None
    ) -> Cell:
        if kind not in CELL_LIBRARY and kind not in CONSTANT_CELLS:
            raise NetlistError(f"unknown cell type {kind!r}")
        if kind in CELL_LIBRARY:
            spec = CELL_LIBRARY[kind]
            expected = set(spec.ports)
            if set(connections) != expected:
                raise NetlistError(
                    f"cell {kind} needs ports {sorted(expected)}, "
                    f"got {sorted(connections)}"
                )
        elif set(connections) != {"Y"}:
            raise NetlistError(f"constant cell {kind} needs exactly port Y")
        if name is None:
            name = f"id{self._next_cell:05d}"
            self._next_cell += 1
        if name in self.cells:
            raise NetlistError(f"duplicate cell name {name!r}")
        cell = Cell(kind, name, dict(connections))
        self.cells[name] = cell
        return cell

    def name_net(self, name: str, bits: Sequence[Net]) -> None:
        """Record a human-readable name for a bit vector (EDIF nets)."""
        self.net_names[name] = list(bits)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def inputs(self) -> List[Port]:
        return [p for p in self.ports.values() if p.direction == PortDirection.INPUT]

    def outputs(self) -> List[Port]:
        return [p for p in self.ports.values() if p.direction == PortDirection.OUTPUT]

    def drivers(self) -> Dict[Net, Tuple[str, str]]:
        """Map each driven net to its (cell_name, port) driver.

        Module inputs are recorded with cell name ``""`` and the port
        name.  Raises on multiply-driven nets.
        """
        out: Dict[Net, Tuple[str, str]] = {}
        for port in self.inputs():
            for i, net in enumerate(port.bits):
                if net in out:
                    raise NetlistError(f"net {net} multiply driven")
                out[net] = ("", f"{port.name}[{i}]")
        for cell in self.cells.values():
            net = cell.output_net
            if net in out:
                raise NetlistError(
                    f"net {net} multiply driven (by {out[net]} and {cell.name})"
                )
            out[net] = (cell.name, cell.output_port)
        return out

    def sinks(self) -> Dict[Net, List[Tuple[str, str]]]:
        """Map each net to the (cell_name, port) pairs that read it."""
        out: Dict[Net, List[Tuple[str, str]]] = {}
        for cell in self.cells.values():
            for port_name in cell.input_ports:
                out.setdefault(cell.connections[port_name], []).append(
                    (cell.name, port_name)
                )
        for port in self.outputs():
            for i, net in enumerate(port.bits):
                out.setdefault(net, []).append(("", f"{port.name}[{i}]"))
        return out

    def num_cells(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.cells)
        return sum(1 for c in self.cells.values() if c.kind == kind)

    def cell_histogram(self) -> Dict[str, int]:
        hist: Dict[str, int] = {}
        for cell in self.cells.values():
            hist[cell.kind] = hist.get(cell.kind, 0) + 1
        return dict(sorted(hist.items()))

    def all_nets(self) -> Set[Net]:
        nets: Set[Net] = set()
        for port in self.ports.values():
            nets.update(port.bits)
        for cell in self.cells.values():
            nets.update(cell.connections.values())
        return nets

    def has_sequential(self) -> bool:
        return any(cell.is_sequential for cell in self.cells.values())

    def counters(self) -> Dict[str, int]:
        """Artifact-size counters for the pass pipeline's stats table."""
        return {
            "cells": len(self.cells),
            "ports": len(self.ports),
            "nets": len(self.all_nets()),
        }

    # ------------------------------------------------------------------
    # Ordering and validation
    # ------------------------------------------------------------------
    def topological_cells(self) -> List[Cell]:
        """Combinational cells in dependency order (DFFs excluded sources).

        Flip-flop outputs and module inputs are treated as sources.
        Raises :class:`NetlistError` on a combinational cycle.
        """
        ready: Set[Net] = set()
        for port in self.inputs():
            ready.update(port.bits)
        pending: List[Cell] = []
        for cell in self.cells.values():
            if cell.is_sequential or cell.kind in CONSTANT_CELLS:
                ready.add(cell.output_net)
            else:
                pending.append(cell)

        order: List[Cell] = []
        # Include constant cells first so simulators see their values.
        order.extend(
            c for c in self.cells.values() if c.kind in CONSTANT_CELLS
        )
        remaining = list(pending)
        while remaining:
            progress = []
            still = []
            for cell in remaining:
                if all(net in ready for net in cell.input_nets):
                    progress.append(cell)
                    ready.add(cell.output_net)
                else:
                    still.append(cell)
            if not progress:
                names = [c.name for c in still[:5]]
                raise NetlistError(f"combinational cycle involving {names}")
            order.extend(progress)
            remaining = still
        # Sequential cells last (their inputs are now ordered).
        order.extend(c for c in self.cells.values() if c.is_sequential)
        return order

    def validate(self) -> None:
        """Check single-driver discipline and that all inputs are driven."""
        drivers = self.drivers()
        for cell in self.cells.values():
            for port_name in cell.input_ports:
                net = cell.connections[port_name]
                if net not in drivers:
                    raise NetlistError(
                        f"cell {cell.name} port {port_name} reads undriven net {net}"
                    )
        for port in self.outputs():
            for i, net in enumerate(port.bits):
                if net not in drivers:
                    raise NetlistError(
                        f"output {port.name}[{i}] is an undriven net {net}"
                    )

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, {len(self.cells)} cells, "
            f"{len(self.ports)} ports)"
        )
